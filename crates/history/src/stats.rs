//! Summary statistics of a history: the knobs the paper's complexity bounds
//! are parameterised on (`n`, `c`) plus the zone/chunk census FZF sees.

use crate::{chunk_set, clusters, zones, History, ZoneKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A census of one history.
///
/// # Examples
///
/// ```
/// use kav_history::{HistoryBuilder, HistoryStats};
///
/// let h = HistoryBuilder::new()
///     .write(1, 0, 10)
///     .write(2, 5, 15)
///     .read(1, 20, 30)
///     .build()?;
/// let stats = HistoryStats::of(&h);
/// assert_eq!(stats.ops, 3);
/// assert_eq!(stats.max_concurrent_writes, 2);
/// # Ok::<(), kav_history::ValidationError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryStats {
    /// Total operations `n`.
    pub ops: usize,
    /// Number of reads.
    pub reads: usize,
    /// Number of writes (= number of clusters).
    pub writes: usize,
    /// Maximum writes concurrently active — the `c` of Theorem 3.2.
    pub max_concurrent_writes: usize,
    /// Clusters with forward zones.
    pub forward_clusters: usize,
    /// Clusters with backward zones.
    pub backward_clusters: usize,
    /// Maximal chunks in `CS(H)`.
    pub chunks: usize,
    /// Dangling (chunk-less backward) clusters.
    pub dangling_clusters: usize,
    /// Largest number of clusters in any single chunk.
    pub largest_chunk: usize,
}

impl HistoryStats {
    /// Computes the census of `history`.
    pub fn of(history: &History) -> Self {
        let cs = clusters(history);
        let zs = zones(history, &cs);
        let chunked = chunk_set(&zs);
        let forward = zs.iter().filter(|z| z.kind() == ZoneKind::Forward).count();
        HistoryStats {
            ops: history.len(),
            reads: history.num_reads(),
            writes: history.num_writes(),
            max_concurrent_writes: history.max_concurrent_writes(),
            forward_clusters: forward,
            backward_clusters: zs.len() - forward,
            chunks: chunked.chunks.len(),
            dangling_clusters: chunked.dangling.len(),
            largest_chunk: chunked
                .chunks
                .iter()
                .map(|c| c.num_clusters())
                .max()
                .unwrap_or(0),
        }
    }
}

impl fmt::Display for HistoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "operations:             {}", self.ops)?;
        writeln!(f, "  reads:                {}", self.reads)?;
        writeln!(f, "  writes:               {}", self.writes)?;
        writeln!(f, "max concurrent writes:  {}", self.max_concurrent_writes)?;
        writeln!(f, "forward clusters:       {}", self.forward_clusters)?;
        writeln!(f, "backward clusters:      {}", self.backward_clusters)?;
        writeln!(f, "maximal chunks:         {}", self.chunks)?;
        writeln!(f, "dangling clusters:      {}", self.dangling_clusters)?;
        write!(f, "largest chunk:          {}", self.largest_chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn census_counts_match() {
        let h = HistoryBuilder::new()
            .write(1, 0, 2)
            .read(1, 4, 6) // forward cluster
            .write(2, 3, 5) // backward, inside chunk [2,4]? high=5 > 4 -> dangling
            .write(3, 20, 22) // backward, dangling
            .build()
            .unwrap();
        let s = HistoryStats::of(&h);
        assert_eq!(s.ops, 4);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 3);
        assert_eq!(s.forward_clusters, 1);
        assert_eq!(s.backward_clusters, 2);
        assert_eq!(s.chunks, 1);
        assert_eq!(s.chunks + s.dangling_clusters, 3 - s.forward_clusters + 1);
        assert!(s.largest_chunk >= 1);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn empty_history_census() {
        let h = HistoryBuilder::new().build().unwrap();
        let s = HistoryStats::of(&h);
        assert_eq!(s.ops, 0);
        assert_eq!(s.largest_chunk, 0);
    }
}
