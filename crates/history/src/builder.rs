//! Fluent construction of histories for tests, docs and examples.

use crate::{History, Operation, RawHistory, Time, ValidationError, Value, Weight};

/// A fluent builder over [`RawHistory`] that keeps call sites compact.
///
/// # Examples
///
/// ```
/// use kav_history::HistoryBuilder;
///
/// let h = HistoryBuilder::new()
///     .write(1, 0, 10)
///     .write(2, 5, 15)
///     .read(1, 20, 30)
///     .build()?;
/// assert_eq!(h.len(), 3);
/// # Ok::<(), kav_history::ValidationError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistoryBuilder {
    raw: RawHistory,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Appends a write of `value` over `[start, finish]`.
    pub fn write(mut self, value: u64, start: u64, finish: u64) -> Self {
        self.raw.write(Value(value), Time(start), Time(finish));
        self
    }

    /// Appends a read of `value` over `[start, finish]`.
    pub fn read(mut self, value: u64, start: u64, finish: u64) -> Self {
        self.raw.read(Value(value), Time(start), Time(finish));
        self
    }

    /// Appends a write of `value` over `[start, finish]` issued by
    /// `client` (for session-aware consistency models).
    pub fn write_by(mut self, client: u64, value: u64, start: u64, finish: u64) -> Self {
        self.raw
            .push(Operation::write(Value(value), Time(start), Time(finish)).with_client(client));
        self
    }

    /// Appends a read of `value` over `[start, finish]` issued by
    /// `client`.
    pub fn read_by(mut self, client: u64, value: u64, start: u64, finish: u64) -> Self {
        self.raw
            .push(Operation::read(Value(value), Time(start), Time(finish)).with_client(client));
        self
    }

    /// Appends a write with an explicit k-WAV weight.
    pub fn weighted_write(mut self, value: u64, start: u64, finish: u64, weight: u32) -> Self {
        self.raw.push(Operation::weighted_write(
            Value(value),
            Time(start),
            Time(finish),
            Weight(weight),
        ));
        self
    }

    /// Appends an arbitrary operation.
    pub fn op(mut self, op: Operation) -> Self {
        self.raw.push(op);
        self
    }

    /// Returns the accumulated operations without validating.
    pub fn build_raw(self) -> RawHistory {
        self.raw
    }

    /// Validates and builds the [`History`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] if the accumulated operations violate
    /// the §II model assumptions.
    pub fn build(self) -> Result<History, ValidationError> {
        self.raw.into_history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let h = HistoryBuilder::new()
            .write(1, 0, 10)
            .read(1, 20, 30)
            .weighted_write(2, 40, 50, 9)
            .build()
            .unwrap();
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_write_weight(), 10);
    }

    #[test]
    fn build_raw_skips_validation() {
        let raw = HistoryBuilder::new().read(7, 0, 5).build_raw();
        assert_eq!(raw.len(), 1);
        assert!(!raw.validate().is_clean());
    }

    #[test]
    fn op_appends_arbitrary_operations() {
        let op = Operation::read(Value(1), Time(6), Time(9));
        let raw = HistoryBuilder::new().write(1, 0, 5).op(op).build_raw();
        assert_eq!(raw.ops[1], op);
    }
}
