//! Operations: the atoms of a history.
//!
//! Each operation is a read or a write on a single register, with a start
//! time, a finish time, a value (stored or retrieved) and — for the weighted
//! k-AV problem of §V — a positive weight (unit by default).

use crate::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operation inside one [`crate::History`] (its index).
///
/// Ids are dense: a history with `n` operations uses ids `0..n`. They are
/// only meaningful relative to the history that produced them.
///
/// # Examples
///
/// ```
/// use kav_history::OpId;
///
/// let id = OpId(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "op3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct OpId(pub usize);

impl OpId {
    /// Returns the operation's index into the history's operation table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The value written by a write or returned by a read.
///
/// The paper assumes each write stores a *distinct* value (§II-C) — in a real
/// deployment the value would be tagged with a globally unique write id —
/// which makes the read→dictating-write mapping a function. We keep that
/// assumption and validate it when a [`crate::History`] is constructed.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Value(pub u64);

impl Value {
    /// Returns the raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for Value {
    fn from(value: u64) -> Self {
        Value(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Positive weight of a write, for the weighted k-AV problem (§V).
///
/// The unweighted problem is the special case where every write has weight
/// `Weight::UNIT`; reads carry a weight too but it is never consulted.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Weight(pub u32);

impl Weight {
    /// The default weight of every operation: 1.
    pub const UNIT: Weight = Weight(1);

    /// Returns the raw weight.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::UNIT
    }
}

impl From<u32> for Weight {
    fn from(value: u32) -> Self {
        Weight(value)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether an operation reads or writes the register.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum OpKind {
    /// The operation retrieves a value.
    Read,
    /// The operation stores a value.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
        }
    }
}

/// The anonymous client id: operations not tagged with a session carry
/// client `0`, which consistency models treat as "no session information"
/// (each untagged operation is its own one-op session — always sound).
pub const UNTAGGED_CLIENT: u64 = 0;

/// Serialisation predicate: untagged operations omit the `client` field,
/// keeping the codecs byte-identical to pre-session streams.
fn client_is_untagged(client: &u64) -> bool {
    *client == UNTAGGED_CLIENT
}

/// A single read or write operation with its time interval.
///
/// An operation is *active* over the closed interval `[start, finish]`. The
/// paper's "precedes" partial order (`op1.f < op2.s`) and everything built on
/// it is exposed via [`Operation::precedes`] and [`Operation::overlaps`].
///
/// # Examples
///
/// ```
/// use kav_history::{Operation, Time, Value};
///
/// let w = Operation::write(Value(1), Time(0), Time(10));
/// let r = Operation::read(Value(1), Time(12), Time(20));
/// assert!(w.precedes(&r));
/// assert!(!r.precedes(&w));
/// assert!(!w.overlaps(&r));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Operation {
    /// Read or write.
    pub kind: OpKind,
    /// Value stored (write) or retrieved (read).
    pub value: Value,
    /// Invocation time.
    pub start: Time,
    /// Response time. Must be strictly greater than `start`.
    pub finish: Time,
    /// Weight for the weighted k-AV problem; 1 unless set explicitly.
    #[serde(default)]
    pub weight: Weight,
    /// Issuing client (session) id; [`UNTAGGED_CLIENT`] (`0`) when the
    /// stream carries no session information. Session-aware consistency
    /// models (causal) order operations of the same client; interval-only
    /// models ignore it.
    #[serde(default, skip_serializing_if = "client_is_untagged")]
    pub client: u64,
}

impl Operation {
    /// Creates a unit-weight read of `value` active over `[start, finish]`.
    pub fn read(value: Value, start: Time, finish: Time) -> Self {
        Operation {
            kind: OpKind::Read,
            value,
            start,
            finish,
            weight: Weight::UNIT,
            client: UNTAGGED_CLIENT,
        }
    }

    /// Creates a unit-weight write of `value` active over `[start, finish]`.
    pub fn write(value: Value, start: Time, finish: Time) -> Self {
        Operation {
            kind: OpKind::Write,
            value,
            start,
            finish,
            weight: Weight::UNIT,
            client: UNTAGGED_CLIENT,
        }
    }

    /// Creates a write with an explicit weight (for k-WAV instances, §V).
    pub fn weighted_write(value: Value, start: Time, finish: Time, weight: Weight) -> Self {
        Operation { kind: OpKind::Write, value, start, finish, weight, client: UNTAGGED_CLIENT }
    }

    /// Tags the operation with the issuing client (session) id.
    #[must_use]
    pub fn with_client(mut self, client: u64) -> Self {
        self.client = client;
        self
    }

    /// True when the operation carries no session information.
    #[inline]
    pub fn is_untagged(&self) -> bool {
        self.client == UNTAGGED_CLIENT
    }

    /// Returns true if this is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind == OpKind::Read
    }

    /// Returns true if this is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind == OpKind::Write
    }

    /// The paper's "precedes" relation: `self.finish < other.start`.
    #[inline]
    pub fn precedes(&self, other: &Operation) -> bool {
        self.finish < other.start
    }

    /// Two operations are concurrent iff neither precedes the other.
    #[inline]
    pub fn overlaps(&self, other: &Operation) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})@[{},{}]",
            self.kind, self.value, self.start, self.finish
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: u64, f: u64) -> Operation {
        Operation::write(Value(1), Time(s), Time(f))
    }

    #[test]
    fn precedes_is_strict_on_endpoints() {
        let a = w(0, 5);
        let b = w(6, 10);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));

        // Sharing an endpoint would not count as preceding; endpoints are
        // distinct in validated histories anyway.
        let c = w(5, 9);
        assert!(!a.precedes(&c));
        assert!(a.overlaps(&c));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = w(0, 10);
        let b = w(5, 15);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.precedes(&b));
    }

    #[test]
    fn constructors_set_kind_and_unit_weight() {
        let r = Operation::read(Value(9), Time(1), Time(2));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(r.weight, Weight::UNIT);

        let w = Operation::weighted_write(Value(3), Time(1), Time(2), Weight(7));
        assert!(w.is_write());
        assert_eq!(w.weight.as_u32(), 7);
    }

    #[test]
    fn serde_roundtrip_defaults_weight() {
        let js = r#"{"kind":"write","value":4,"start":0,"finish":3}"#;
        let op: Operation = serde_json::from_str(js).unwrap();
        assert_eq!(op.weight, Weight::UNIT);
        assert_eq!(op.kind, OpKind::Write);
        let back = serde_json::to_string(&op).unwrap();
        let again: Operation = serde_json::from_str(&back).unwrap();
        assert_eq!(op, again);
    }

    #[test]
    fn client_tag_defaults_and_roundtrips() {
        // Untagged operations serialise without a `client` field — the
        // bytes are identical to pre-session streams.
        let untagged = Operation::write(Value(4), Time(0), Time(3));
        assert!(untagged.is_untagged());
        let js = serde_json::to_string(&untagged).unwrap();
        assert!(!js.contains("client"), "untagged op leaked a client field: {js}");

        // Tagged operations carry it and round-trip.
        let tagged = Operation::read(Value(4), Time(5), Time(9)).with_client(7);
        assert!(!tagged.is_untagged());
        let js = serde_json::to_string(&tagged).unwrap();
        assert!(js.contains("\"client\":7"), "missing client field: {js}");
        let back: Operation = serde_json::from_str(&js).unwrap();
        assert_eq!(back, tagged);

        // Absent field deserialises as untagged.
        let op: Operation =
            serde_json::from_str(r#"{"kind":"write","value":4,"start":0,"finish":3}"#).unwrap();
        assert_eq!(op.client, UNTAGGED_CLIENT);
    }

    #[test]
    fn display_formats() {
        let op = Operation::read(Value(2), Time(1), Time(4));
        assert_eq!(op.to_string(), "read(v2)@[t1,t4]");
    }
}
