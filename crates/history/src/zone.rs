//! Zones (Gibbons & Korach): the time footprint of a cluster.
//!
//! For a cluster, let `Z.f` be the minimum finish time of any operation in
//! the cluster and `Z.s̄` the maximum start time. The zone is *forward* when
//! `Z.f < Z.s̄` (some member starts after another finished) and *backward*
//! otherwise (all members overlap pairwise — they share a common instant).
//! The zone occupies `[low, high] = [min(Z.f, Z.s̄), max(Z.f, Z.s̄)]`.
//!
//! Gibbons & Korach's classic test: a history is 1-atomic iff no two forward
//! zones overlap and no backward zone lies entirely inside a forward zone.
//! FZF's Stage 1 (§IV-A) chunks the history along the same structure.

use crate::{Cluster, ClusterId, History, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Orientation of a zone.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
#[serde(rename_all = "snake_case")]
pub enum ZoneKind {
    /// `min finish < max start`: the cluster's operations do not all
    /// pairwise overlap. A forward cluster always has at least one read
    /// (otherwise its only start precedes its only finish).
    Forward,
    /// `max start < min finish`: every pair of cluster operations overlaps;
    /// the zone is the interval common to all of them. Write-only clusters
    /// are always backward.
    Backward,
}

impl fmt::Display for ZoneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneKind::Forward => write!(f, "forward"),
            ZoneKind::Backward => write!(f, "backward"),
        }
    }
}

/// The zone of one cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Zone {
    /// The cluster this zone describes.
    pub cluster: ClusterId,
    /// Minimum finish time over the cluster (`Z.f`).
    pub min_finish: Time,
    /// Maximum start time over the cluster (`Z.s̄`).
    pub max_start: Time,
}

impl Zone {
    /// Computes the zone of `cluster` within `history`.
    pub fn of_cluster(history: &History, id: ClusterId, cluster: &Cluster) -> Zone {
        let mut min_finish = Time::MAX;
        let mut max_start = Time::ZERO;
        for op in cluster.ops() {
            let op = history.op(op);
            min_finish = min_finish.min(op.finish);
            max_start = max_start.max(op.start);
        }
        Zone { cluster: id, min_finish, max_start }
    }

    /// Forward or backward (§IV).
    #[inline]
    pub fn kind(&self) -> ZoneKind {
        // Endpoints are distinct in a validated history, so < vs > is total.
        if self.min_finish < self.max_start {
            ZoneKind::Forward
        } else {
            ZoneKind::Backward
        }
    }

    /// True iff this is a forward zone.
    #[inline]
    pub fn is_forward(&self) -> bool {
        self.kind() == ZoneKind::Forward
    }

    /// The low endpoint `Z.l = min(Z.f, Z.s̄)`.
    #[inline]
    pub fn low(&self) -> Time {
        self.min_finish.min(self.max_start)
    }

    /// The high endpoint `Z.h = max(Z.f, Z.s̄)`.
    #[inline]
    pub fn high(&self) -> Time {
        self.min_finish.max(self.max_start)
    }

    /// True iff the zones' closed intervals `[low, high]` intersect.
    #[inline]
    pub fn overlaps(&self, other: &Zone) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }

    /// True iff `other` lies strictly inside this zone's interval.
    #[inline]
    pub fn contains(&self, other: &Zone) -> bool {
        self.low() < other.low() && other.high() < self.high()
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{},{}]", self.kind(), self.low(), self.high())
    }
}

/// Computes the zone of every cluster, in cluster order.
///
/// # Examples
///
/// ```
/// use kav_history::{RawHistory, Value, Time, clusters, zones, ZoneKind};
///
/// let mut raw = RawHistory::new();
/// raw.write(Value(1), Time(0), Time(4));      // finishes before...
/// raw.read(Value(1), Time(6), Time(9));       // ...its read starts: forward
/// raw.write(Value(2), Time(1), Time(11));     // write-only: backward
/// let h = raw.into_history()?;
/// let cs = clusters(&h);
/// let zs = zones(&h, &cs);
/// assert_eq!(zs[0].kind(), ZoneKind::Forward);
/// assert_eq!(zs[1].kind(), ZoneKind::Backward);
/// # Ok::<(), kav_history::ValidationError>(())
/// ```
pub fn zones(history: &History, clusters: &[Cluster]) -> Vec<Zone> {
    clusters
        .iter()
        .enumerate()
        .map(|(i, c)| Zone::of_cluster(history, ClusterId(i), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clusters, RawHistory, Value};

    fn zones_of(raw: RawHistory) -> (History, Vec<Zone>) {
        let h = raw.into_history().unwrap();
        let cs = clusters(&h);
        let zs = zones(&h, &cs);
        (h, zs)
    }

    #[test]
    fn forward_zone_from_read_after_write() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(10));
        raw.read(Value(1), Time(20), Time(30));
        let (_, zs) = zones_of(raw);
        assert_eq!(zs.len(), 1);
        assert!(zs[0].is_forward());
        // Zone spans [write finish, read start] in normalised coordinates.
        assert_eq!(zs[0].low(), zs[0].min_finish);
        assert_eq!(zs[0].high(), zs[0].max_start);
    }

    #[test]
    fn backward_zone_from_fully_overlapping_cluster() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(100));
        raw.read(Value(1), Time(10), Time(150));
        // Normalisation shortens the write below t=150, keeping overlap.
        let (_, zs) = zones_of(raw);
        assert_eq!(zs[0].kind(), ZoneKind::Backward);
        assert!(zs[0].low() < zs[0].high());
    }

    #[test]
    fn write_only_cluster_is_backward() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(3), Time(7));
        let (_, zs) = zones_of(raw);
        assert_eq!(zs[0].kind(), ZoneKind::Backward);
        assert_eq!(zs[0].low(), Time(0)); // re-ranked start
        assert_eq!(zs[0].high(), Time(1)); // re-ranked finish
    }

    #[test]
    fn overlap_and_containment() {
        let a = Zone { cluster: ClusterId(0), min_finish: Time(2), max_start: Time(10) };
        let b = Zone { cluster: ClusterId(1), min_finish: Time(5), max_start: Time(12) };
        let c = Zone { cluster: ClusterId(2), min_finish: Time(7), max_start: Time(4) }; // backward [4,7]
        let d = Zone { cluster: ClusterId(3), min_finish: Time(30), max_start: Time(40) };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&d));
        assert!(a.contains(&c));
        assert!(!c.contains(&a));
        assert!(!a.contains(&b));
    }

    #[test]
    fn display_mentions_kind_and_bounds() {
        let z = Zone { cluster: ClusterId(0), min_finish: Time(2), max_start: Time(10) };
        assert_eq!(z.to_string(), "forward[t2,t10]");
    }
}
