//! Compact binary op frames: the fixed-width twin of the NDJSON codec.
//!
//! One operation is one little-endian frame. The v1 layout
//! ([`FRAME_MAGIC`], 37 bytes) has no session information; the v2 layout
//! ([`FRAME_MAGIC_V2`], 45 bytes) appends the issuing client id:
//!
//! ```text
//! offset  size  field
//!      0     8  key     (u64 LE)
//!      8     8  value   (u64 LE)
//!     16     8  start   (u64 LE)
//!     24     8  finish  (u64 LE)
//!     32     4  weight  (u32 LE)
//!     36     1  kind    (0 = read, 1 = write)
//!     37     8  client  (u64 LE, v2 only; 0 = untagged)
//! ```
//!
//! [`FrameReader`] sniffs the leading magic and decodes either version;
//! writers pick one explicitly ([`FrameWriter::new`] for v1, which rejects
//! client-tagged records rather than silently dropping the tag, and
//! [`FrameWriter::new_v2`] for v2).
//!
//! The format serves two roles:
//!
//! * **In process** — [`FrameBatch`] is the shard-channel payload of the
//!   streaming pipeline: one flat allocation per batch instead of a
//!   `Vec<(u64, Operation)>` per send, and the natural wire format once
//!   shards live in other processes.
//! * **On disk / on the wire** — a stream file is the 8-byte magic
//!   [`FRAME_MAGIC`] followed by consecutive frames (`kav gen --format
//!   binary`, `kav stream --format binary`). [`FrameReader`] mirrors the
//!   NDJSON readers' accounting: frames take the place of lines in
//!   checkpoint positions, and the resume [`Fingerprint`] chain digests
//!   one chunk per frame — so a checkpoint records which format produced
//!   it, and cross-format resume fails the fingerprint check instead of
//!   silently mixing formats.

use crate::fxhash::Fingerprint;
use crate::ndjson::{NdjsonError, StreamRecord};
use crate::{OpKind, Operation, Time, Value, Weight, UNTAGGED_CLIENT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Leading magic of a v1 binary stream file (37-byte frames, no client).
pub const FRAME_MAGIC: [u8; 8] = *b"KAVF0001";

/// Leading magic of a v2 binary stream file (45-byte frames with client).
pub const FRAME_MAGIC_V2: [u8; 8] = *b"KAVF0002";

/// Size of one encoded v1 frame in bytes.
pub const FRAME_LEN: usize = 37;

/// Size of one encoded v2 frame in bytes (v1 plus the client id).
pub const FRAME_LEN_V2: usize = 45;

/// Leading magic of a routed frame batch (the coordinator↔worker wire
/// payload, see [`encode_routed_batch`]); also versions that layout.
/// `KVB2` batches carry 45-byte v2 frames.
pub const BATCH_MAGIC: [u8; 4] = *b"KVB2";

/// Byte length of the routed-batch header: magic, range, payload length.
pub const BATCH_HEADER_LEN: usize = 20;

const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;

/// Appends one operation as a 37-byte v1 frame. The client tag, if any,
/// is not representable in v1; callers that may carry one go through
/// [`encode_frame_v2`] or a v1 [`FrameWriter`] (which rejects tags).
pub fn encode_frame(key: u64, op: &Operation, out: &mut Vec<u8>) {
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&op.value.0.to_le_bytes());
    out.extend_from_slice(&op.start.0.to_le_bytes());
    out.extend_from_slice(&op.finish.0.to_le_bytes());
    out.extend_from_slice(&op.weight.0.to_le_bytes());
    out.push(match op.kind {
        OpKind::Read => KIND_READ,
        OpKind::Write => KIND_WRITE,
    });
}

/// Appends one operation as a 45-byte v2 frame (v1 plus the client id).
pub fn encode_frame_v2(key: u64, op: &Operation, out: &mut Vec<u8>) {
    encode_frame(key, op, out);
    out.extend_from_slice(&op.client.to_le_bytes());
}

/// Decodes one 37-byte v1 frame; `Err` carries the offending kind byte.
fn decode_frame(frame: &[u8]) -> Result<(u64, Operation), u8> {
    let u64_at = |off: usize| {
        u64::from_le_bytes(frame[off..off + 8].try_into().expect("8-byte slice"))
    };
    let kind = match frame[36] {
        KIND_READ => OpKind::Read,
        KIND_WRITE => OpKind::Write,
        bad => return Err(bad),
    };
    Ok((
        u64_at(0),
        Operation {
            kind,
            value: Value(u64_at(8)),
            start: Time(u64_at(16)),
            finish: Time(u64_at(24)),
            weight: Weight(u32::from_le_bytes(frame[32..36].try_into().expect("4-byte slice"))),
            client: UNTAGGED_CLIENT,
        },
    ))
}

/// Decodes one 45-byte v2 frame; `Err` carries the offending kind byte.
fn decode_frame_v2(frame: &[u8]) -> Result<(u64, Operation), u8> {
    let (key, mut op) = decode_frame(&frame[..FRAME_LEN])?;
    op.client = u64::from_le_bytes(frame[37..45].try_into().expect("8-byte slice"));
    Ok((key, op))
}

/// A batch of operations in one flat frame buffer — the streaming
/// pipeline's shard-channel payload.
///
/// Frames in a batch are trusted (only [`push`](FrameBatch::push) writes
/// them), so iteration does not re-validate.
#[derive(Clone, Debug, Default)]
pub struct FrameBatch {
    bytes: Vec<u8>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// An empty batch with room for `frames` operations.
    pub fn with_capacity(frames: usize) -> Self {
        FrameBatch { bytes: Vec::with_capacity(frames * FRAME_LEN_V2) }
    }

    /// Appends one keyed operation.
    pub fn push(&mut self, key: u64, op: &Operation) {
        encode_frame_v2(key, op, &mut self.bytes);
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / FRAME_LEN_V2
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Empties the batch, keeping its allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }

    /// Decodes the batch in push order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Operation)> + '_ {
        self.bytes.chunks_exact(FRAME_LEN_V2).map(|frame| {
            decode_frame_v2(frame).expect("FrameBatch frames are written by FrameBatch::push")
        })
    }

    /// The raw frame bytes (no magic, no header) — `len() * FRAME_LEN_V2`
    /// bytes of consecutive v2 frames.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a batch from raw frame bytes, validating what the trusted
    /// iterator assumes: whole frames only, every kind byte legal.
    ///
    /// # Errors
    ///
    /// Rejects a byte length that is not a multiple of [`FRAME_LEN_V2`]
    /// and any frame whose kind byte is neither read nor write.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, BatchError> {
        if !bytes.len().is_multiple_of(FRAME_LEN_V2) {
            return Err(BatchError::TruncatedFrames { bytes: bytes.len() });
        }
        for (i, frame) in bytes.chunks_exact(FRAME_LEN_V2).enumerate() {
            if let Err(kind) = decode_frame_v2(frame) {
                return Err(BatchError::BadKind { frame: i + 1, kind });
            }
        }
        Ok(FrameBatch { bytes })
    }
}

/// A bit-prefix slice of the hashed key space — the unit the fleet
/// coordinator assigns, hands off and splits.
///
/// A range covers every key whose multiplicative hash has `prefix` as its
/// top `bits` bits. Unlike `shard_of`'s modulus, prefixes **nest**:
/// [`split`](KeyRange::split) yields two children that exactly tile the
/// parent, so a hot shard can be split without re-hashing anything else in
/// the fleet, and any set of ranges produced by repeated splits of
/// [`KeyRange::ALL`] tiles the key space with no overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyRange {
    /// How many leading hash bits the prefix pins (0 = the whole space).
    pub bits: u32,
    /// The pinned leading bits, right-aligned (`prefix < 2^bits`).
    pub prefix: u64,
}

/// The multiplier behind both `shard_of` and [`KeyRange`]: keys are
/// compared by the bits of `key * KEY_HASH_MULTIPLIER`.
const KEY_HASH_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

impl KeyRange {
    /// The whole key space (the one range a single-worker fleet owns).
    pub const ALL: KeyRange = KeyRange { bits: 0, prefix: 0 };

    /// Splits can nest at most this deep (far beyond any real fleet, but
    /// it keeps `prefix` shifts well-defined).
    pub const MAX_BITS: u32 = 32;

    /// Whether the pair is internally consistent: `bits` within
    /// [`MAX_BITS`](KeyRange::MAX_BITS) and `prefix` inside `2^bits`.
    /// Deserialized ranges must pass this before use.
    pub fn is_valid(&self) -> bool {
        self.bits <= Self::MAX_BITS && (self.bits == 0 || self.prefix >> self.bits == 0)
    }

    /// Whether `key` hashes into this range.
    pub fn contains(&self, key: u64) -> bool {
        if self.bits == 0 {
            return true;
        }
        key.wrapping_mul(KEY_HASH_MULTIPLIER) >> (64 - self.bits) == self.prefix
    }

    /// The two child ranges that exactly tile this one (next hash bit 0
    /// and 1) — the hot-shard split.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_BITS`](KeyRange::MAX_BITS) levels of nesting.
    pub fn split(&self) -> (KeyRange, KeyRange) {
        assert!(self.bits < Self::MAX_BITS, "key range split past {} bits", Self::MAX_BITS);
        let bits = self.bits + 1;
        (
            KeyRange { bits, prefix: self.prefix << 1 },
            KeyRange { bits, prefix: (self.prefix << 1) | 1 },
        )
    }

    /// The smallest uniform partition with at least `workers` ranges:
    /// `2^ceil(log2(workers))` ranges of equal width, in prefix order.
    /// Dealt round-robin they give every worker of a fresh fleet one or
    /// two ranges.
    pub fn partition(workers: usize) -> Vec<KeyRange> {
        let workers = workers.clamp(1, 1usize << Self::MAX_BITS);
        let bits = usize::BITS - (workers - 1).leading_zeros();
        (0..1u64 << bits).map(|prefix| KeyRange { bits, prefix }).collect()
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits == 0 {
            write!(f, "*/0")
        } else {
            write!(f, "{:0width$b}/{}", self.prefix, self.bits, width = self.bits as usize)
        }
    }
}

/// Why routed-batch bytes were rejected (see [`decode_routed_batch`]).
///
/// Every variant is an input-protocol fault, never a verdict: the fleet
/// surfaces these as exit-2 diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// The header does not start with [`BATCH_MAGIC`].
    BadMagic([u8; 4]),
    /// Fewer than [`BATCH_HEADER_LEN`] header bytes arrived.
    TruncatedHeader {
        /// Bytes actually present.
        bytes: usize,
    },
    /// The declared range fails [`KeyRange::is_valid`].
    BadRange(KeyRange),
    /// The payload is shorter than the header declared.
    TruncatedPayload {
        /// Payload bytes the header declared.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload length is not a whole number of frames.
    TruncatedFrames {
        /// Payload length in bytes.
        bytes: usize,
    },
    /// A frame's kind byte is neither read (0) nor write (1).
    BadKind {
        /// 1-based frame number within the batch.
        frame: usize,
        /// The offending byte.
        kind: u8,
    },
    /// A frame's key hashes outside the declared routing range.
    ForeignKey {
        /// 1-based frame number within the batch.
        frame: usize,
        /// The misrouted key.
        key: u64,
        /// The range the header declared.
        range: KeyRange,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::BadMagic(got) => {
                write!(f, "bad batch magic {got:?} (expected {BATCH_MAGIC:?})")
            }
            BatchError::TruncatedHeader { bytes } => {
                write!(f, "truncated batch header: {bytes} bytes (need {BATCH_HEADER_LEN})")
            }
            BatchError::BadRange(range) => {
                write!(f, "malformed key range {range:?} in batch header")
            }
            BatchError::TruncatedPayload { declared, actual } => {
                write!(f, "truncated batch payload: header declared {declared} bytes, got {actual}")
            }
            BatchError::TruncatedFrames { bytes } => {
                write!(
                    f,
                    "batch payload of {bytes} bytes is not whole frames ({FRAME_LEN_V2} bytes each)"
                )
            }
            BatchError::BadKind { frame, kind } => {
                write!(f, "frame {frame}: invalid kind byte {kind} (0 = read, 1 = write)")
            }
            BatchError::ForeignKey { frame, key, range } => {
                write!(f, "frame {frame}: key {key} routed outside its declared range {range}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Encodes a batch with its routing header for the coordinator↔worker
/// wire: [`BATCH_MAGIC`], the owning [`KeyRange`] (`bits` u32 LE, `prefix`
/// u64 LE), the payload length (u32 LE), then the raw frames.
///
/// The explicit length prefix is what lets the reader distinguish a short
/// read (connection died mid-batch) from a complete batch, and the range
/// header is what lets the receiving worker reject misrouted keys instead
/// of silently auditing someone else's shard.
pub fn encode_routed_batch(range: KeyRange, batch: &FrameBatch) -> Vec<u8> {
    let payload = batch.as_bytes();
    let mut out = Vec::with_capacity(BATCH_HEADER_LEN + payload.len());
    out.extend_from_slice(&BATCH_MAGIC);
    out.extend_from_slice(&range.bits.to_le_bytes());
    out.extend_from_slice(&range.prefix.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes and fully validates routed-batch bytes: magic, header
/// completeness, declared vs actual payload length, whole frames, legal
/// kind bytes, and **every key inside the declared range**.
///
/// # Errors
///
/// One [`BatchError`] per fault class; a valid batch round-trips
/// [`encode_routed_batch`] exactly.
pub fn decode_routed_batch(bytes: &[u8]) -> Result<(KeyRange, FrameBatch), BatchError> {
    if bytes.len() < BATCH_HEADER_LEN {
        if bytes.len() >= BATCH_MAGIC.len() && bytes[..BATCH_MAGIC.len()] != BATCH_MAGIC {
            let mut got = [0u8; 4];
            got.copy_from_slice(&bytes[..4]);
            return Err(BatchError::BadMagic(got));
        }
        return Err(BatchError::TruncatedHeader { bytes: bytes.len() });
    }
    if bytes[..BATCH_MAGIC.len()] != BATCH_MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&bytes[..4]);
        return Err(BatchError::BadMagic(got));
    }
    let range = KeyRange {
        bits: u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")),
        prefix: u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")),
    };
    if !range.is_valid() {
        return Err(BatchError::BadRange(range));
    }
    let declared = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice")) as usize;
    let payload = &bytes[BATCH_HEADER_LEN..];
    if payload.len() != declared {
        return Err(BatchError::TruncatedPayload { declared, actual: payload.len() });
    }
    let batch = FrameBatch::from_bytes(payload.to_vec())?;
    for (i, (key, _)) in batch.iter().enumerate() {
        if !range.contains(key) {
            return Err(BatchError::ForeignKey { frame: i + 1, key, range });
        }
    }
    Ok((range, batch))
}

/// Streaming writer for the on-disk frame format: magic first, then one
/// frame per record, through a reused buffer.
///
/// [`new`](FrameWriter::new) writes the v1 layout and rejects
/// client-tagged records (the tag has no v1 encoding — dropping it
/// silently would change verdicts under session-aware models);
/// [`new_v2`](FrameWriter::new_v2) writes the v2 layout, which carries
/// the tag.
pub struct FrameWriter<W: std::io::Write> {
    out: W,
    buf: Vec<u8>,
    wrote_magic: bool,
    v2: bool,
}

impl<W: std::io::Write> FrameWriter<W> {
    /// Wraps `out` as a v1 stream; the magic goes out with the first
    /// record (or [`finish`](FrameWriter::finish), so empty streams are
    /// valid too).
    pub fn new(out: W) -> Self {
        FrameWriter { out, buf: Vec::with_capacity(FRAME_LEN_V2), wrote_magic: false, v2: false }
    }

    /// Wraps `out` as a v2 stream (45-byte frames carrying the client id).
    pub fn new_v2(out: W) -> Self {
        FrameWriter { out, buf: Vec::with_capacity(FRAME_LEN_V2), wrote_magic: false, v2: true }
    }

    fn magic(&mut self) -> std::io::Result<()> {
        if !self.wrote_magic {
            self.out.write_all(if self.v2 { &FRAME_MAGIC_V2 } else { &FRAME_MAGIC })?;
            self.wrote_magic = true;
        }
        Ok(())
    }

    /// Writes one record as a frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer; a v1 writer
    /// additionally rejects client-tagged records with
    /// [`std::io::ErrorKind::InvalidInput`].
    pub fn write_record(&mut self, record: &StreamRecord) -> std::io::Result<()> {
        if !self.v2 && record.client != UNTAGGED_CLIENT {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "client-tagged record (client {}) cannot be encoded as a v1 frame; \
                     use the v2 frame format",
                    record.client
                ),
            ));
        }
        self.magic()?;
        self.buf.clear();
        if self.v2 {
            encode_frame_v2(record.key, &record.op(), &mut self.buf);
        } else {
            encode_frame(record.key, &record.op(), &mut self.buf);
        }
        self.out.write_all(&self.buf)
    }

    /// Flushes (writing the magic if nothing else was) and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.magic()?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes records as a binary frame stream file, picking the layout by
/// content: v1 when no record carries a client tag (byte-identical to
/// pre-session streams), v2 as soon as any record does.
///
/// # Errors
///
/// Returns [`NdjsonError::Io`] on I/O failure.
pub fn write_frames<'a>(
    path: impl AsRef<Path>,
    records: impl IntoIterator<Item = &'a StreamRecord> + Clone,
) -> Result<(), NdjsonError> {
    let tagged = records.clone().into_iter().any(|r| r.client != UNTAGGED_CLIENT);
    let out = std::io::BufWriter::new(fs::File::create(path)?);
    let mut writer = if tagged { FrameWriter::new_v2(out) } else { FrameWriter::new(out) };
    for record in records {
        writer.write_record(record)?;
    }
    writer.finish()?;
    Ok(())
}

/// Reader over an in-memory binary frame stream (an mmap'd file or fully
/// buffered pipe) — the frame-format peer of `ndjson::SliceReader`.
///
/// Frames take the place of lines: [`frames_read`](FrameReader::frames_read)
/// is the checkpoint position unit, errors carry the 1-based frame number,
/// and the resume [`Fingerprint`] chain digests one chunk per consumed
/// frame (malformed ones included, like malformed NDJSON lines).
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    frames: u64,
    frame_len: usize,
    fingerprint: Option<Fingerprint>,
}

impl<'a> FrameReader<'a> {
    /// Wraps a frame stream (no fingerprinting), sniffing the leading
    /// magic to pick the v1 or v2 layout.
    ///
    /// # Errors
    ///
    /// Rejects input that begins with neither [`FRAME_MAGIC`] nor
    /// [`FRAME_MAGIC_V2`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, NdjsonError> {
        Self::build(bytes, None)
    }

    /// Wraps a frame stream and fingerprints every consumed frame.
    ///
    /// # Errors
    ///
    /// Rejects input that begins with neither [`FRAME_MAGIC`] nor
    /// [`FRAME_MAGIC_V2`].
    pub fn with_fingerprint(bytes: &'a [u8], fingerprint: Fingerprint) -> Result<Self, NdjsonError> {
        Self::build(bytes, Some(fingerprint))
    }

    fn build(bytes: &'a [u8], fingerprint: Option<Fingerprint>) -> Result<Self, NdjsonError> {
        let frame_len = if bytes.len() >= FRAME_MAGIC.len() && bytes[..FRAME_MAGIC.len()] == FRAME_MAGIC {
            FRAME_LEN
        } else if bytes.len() >= FRAME_MAGIC_V2.len() && bytes[..FRAME_MAGIC_V2.len()] == FRAME_MAGIC_V2 {
            FRAME_LEN_V2
        } else {
            return Err(NdjsonError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a kav binary frame stream (bad magic; expected KAVF0001 or KAVF0002)",
            )));
        };
        Ok(FrameReader { bytes, pos: FRAME_MAGIC.len(), frames: 0, frame_len, fingerprint })
    }

    /// Frames consumed so far (malformed ones included) — the position
    /// unit checkpoints record for binary ingest, as `lines_read` is for
    /// NDJSON.
    pub fn frames_read(&self) -> u64 {
        self.frames
    }

    /// The running digest of all consumed frames, when fingerprinting.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint.as_ref().map(Fingerprint::value)
    }

    /// The next raw frame — one layout-width chunk, or a shorter
    /// truncated tail.
    fn peek_raw_frame(&self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        Some(&rest[..rest.len().min(self.frame_len)])
    }

    fn consume(&mut self, frame: &[u8]) {
        self.pos += frame.len();
        self.frames += 1;
        if let Some(fp) = &mut self.fingerprint {
            fp.update(frame);
        }
    }

    fn parse_error(&self, message: String) -> NdjsonError {
        NdjsonError::Parse {
            line: self.frames as usize,
            source: serde::DeError::custom(message).into(),
        }
    }

    /// Consumes up to `n` raw frames without decoding them (they still
    /// count toward [`frames_read`](FrameReader::frames_read) and the
    /// fingerprint; a truncated tail counts as one frame). Returns how
    /// many frames were actually available.
    ///
    /// # Errors
    ///
    /// Infallible in practice; `io::Result` for signature parity with the
    /// NDJSON readers' `skip_raw_lines`.
    pub fn skip_raw_frames(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0;
        while skipped < n {
            let Some(raw) = self.peek_raw_frame() else { break };
            self.consume(raw);
            skipped += 1;
        }
        Ok(skipped)
    }
}

impl Iterator for FrameReader<'_> {
    type Item = Result<StreamRecord, NdjsonError>;

    fn next(&mut self) -> Option<Self::Item> {
        let raw = self.peek_raw_frame()?;
        self.consume(raw);
        if raw.len() < self.frame_len {
            return Some(Err(self.parse_error(format!(
                "truncated frame: {} trailing bytes (frames are {} bytes)",
                raw.len(),
                self.frame_len
            ))));
        }
        let decoded = if self.frame_len == FRAME_LEN_V2 {
            decode_frame_v2(raw)
        } else {
            decode_frame(raw)
        };
        match decoded {
            Ok((key, op)) => Some(Ok(StreamRecord::new(key, op))),
            Err(bad) => Some(Err(
                self.parse_error(format!("invalid kind byte {bad} (0 = read, 1 = write)"))
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Operation::write(Value(1), Time(0), Time(10))),
            StreamRecord::new(3, Operation::read(Value(1), Time(12), Time(20))),
            StreamRecord::new(
                u64::MAX,
                Operation::weighted_write(Value(u64::MAX), Time(14), Time(30), Weight(u32::MAX)),
            ),
        ]
    }

    #[test]
    fn frame_roundtrip_preserves_records() {
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(bytes.len(), FRAME_MAGIC.len() + sample().len() * FRAME_LEN);
        let decoded: Vec<_> =
            FrameReader::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn batch_roundtrip_preserves_push_order() {
        let mut batch = FrameBatch::with_capacity(3);
        assert!(batch.is_empty());
        for record in sample() {
            batch.push(record.key, &record.op());
        }
        assert_eq!(batch.len(), 3);
        let decoded: Vec<_> = batch.iter().map(|(k, op)| StreamRecord::new(k, op)).collect();
        assert_eq!(decoded, sample());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
    }

    #[test]
    fn bad_magic_truncation_and_bad_kind_are_rejected() {
        assert!(matches!(FrameReader::new(b"NOPE"), Err(NdjsonError::Io(_))));
        assert!(matches!(FrameReader::new(b"KAVF9999AAAA"), Err(NdjsonError::Io(_))));

        // An empty stream is just the magic.
        let empty = FrameWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(empty, FRAME_MAGIC);
        assert_eq!(FrameReader::new(&empty).unwrap().count(), 0);

        // Truncated tail: one good frame then half a frame.
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_record(&sample()[0]).unwrap();
        writer.write_record(&sample()[1]).unwrap();
        let mut bytes = writer.finish().unwrap();
        bytes.truncate(FRAME_MAGIC.len() + FRAME_LEN + 10);
        let mut reader = FrameReader::new(&bytes).unwrap();
        assert_eq!(reader.next().unwrap().unwrap(), sample()[0]);
        match reader.next().unwrap().unwrap_err() {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(reader.next().is_none());

        // A flipped kind byte errors with the frame number and skips on.
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let mut bytes = writer.finish().unwrap();
        bytes[FRAME_MAGIC.len() + FRAME_LEN + 36] = 7;
        let mut reader = FrameReader::new(&bytes).unwrap();
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap().unwrap_err() {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert_eq!(reader.next().unwrap().unwrap(), sample()[2]);
    }

    #[test]
    fn v2_frames_carry_the_client_tag() {
        let records = vec![
            StreamRecord::new(0, Operation::write(Value(1), Time(0), Time(10)).with_client(3)),
            StreamRecord::new(1, Operation::read(Value(1), Time(12), Time(20))),
            StreamRecord::new(
                2,
                Operation::write(Value(2), Time(30), Time(40)).with_client(u64::MAX),
            ),
        ];
        let mut writer = FrameWriter::new_v2(Vec::new());
        for record in &records {
            writer.write_record(record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(&bytes[..8], &FRAME_MAGIC_V2);
        assert_eq!(bytes.len(), FRAME_MAGIC_V2.len() + records.len() * FRAME_LEN_V2);
        let decoded: Vec<_> =
            FrameReader::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, records);

        // An empty v2 stream is just the v2 magic.
        let empty = FrameWriter::new_v2(Vec::<u8>::new()).finish().unwrap();
        assert_eq!(empty, FRAME_MAGIC_V2);
        assert_eq!(FrameReader::new(&empty).unwrap().count(), 0);

        // A v1 writer refuses to drop the tag.
        let mut v1 = FrameWriter::new(Vec::new());
        let err = v1.write_record(&records[0]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // Untagged records still encode in v1 — byte-identical streams.
        v1.write_record(&records[1]).unwrap();
        assert_eq!(v1.finish().unwrap().len(), FRAME_MAGIC.len() + FRAME_LEN);

        // Batches (always v2) preserve the tag too.
        let mut batch = FrameBatch::new();
        for record in &records {
            batch.push(record.key, &record.op());
        }
        let decoded: Vec<_> = batch.iter().map(|(k, op)| StreamRecord::new(k, op)).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn write_frames_picks_the_layout_by_content() {
        let dir = std::env::temp_dir().join("kav_history_frame_v2_test");
        fs::create_dir_all(&dir).unwrap();
        let untagged = sample();
        let path = dir.join("v1.bin");
        write_frames(&path, &untagged).unwrap();
        assert_eq!(&fs::read(&path).unwrap()[..8], &FRAME_MAGIC);
        let tagged = vec![StreamRecord::new(
            0,
            Operation::write(Value(1), Time(0), Time(10)).with_client(5),
        )];
        let path2 = dir.join("v2.bin");
        write_frames(&path2, &tagged).unwrap();
        let bytes = fs::read(&path2).unwrap();
        assert_eq!(&bytes[..8], &FRAME_MAGIC_V2);
        let decoded: Vec<_> =
            FrameReader::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, tagged);
        fs::remove_file(path).ok();
        fs::remove_file(path2).ok();
    }

    #[test]
    fn key_ranges_nest_and_tile() {
        assert!(KeyRange::ALL.is_valid());
        for key in [0u64, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
            assert!(KeyRange::ALL.contains(key));
        }
        // Children exactly tile the parent: every key lands in one child.
        let (zero, one) = KeyRange::ALL.split();
        let (zz, zo) = zero.split();
        for key in 0..10_000u64 {
            assert!(KeyRange::ALL.contains(key));
            assert_ne!(zero.contains(key), one.contains(key));
            if zero.contains(key) {
                assert_ne!(zz.contains(key), zo.contains(key));
            } else {
                assert!(!zz.contains(key) && !zo.contains(key));
            }
        }
        // partition(n) tiles the space with the smallest power of two >= n.
        for workers in 1..=9usize {
            let ranges = KeyRange::partition(workers);
            assert!(ranges.len() >= workers && ranges.len() < workers * 2);
            assert!(ranges.len().is_power_of_two());
            for key in (0..50_000u64).step_by(97) {
                assert_eq!(ranges.iter().filter(|r| r.contains(key)).count(), 1);
            }
        }
        assert!(!KeyRange { bits: 2, prefix: 4 }.is_valid());
        assert!(!KeyRange { bits: KeyRange::MAX_BITS + 1, prefix: 0 }.is_valid());
        assert_eq!(KeyRange::ALL.to_string(), "*/0");
        assert_eq!(KeyRange { bits: 3, prefix: 0b010 }.to_string(), "010/3");
    }

    #[test]
    fn routed_batch_roundtrip_and_rejections() {
        let (left, right) = KeyRange::ALL.split();
        let mut batch = FrameBatch::new();
        let mut in_left = Vec::new();
        for record in sample() {
            if left.contains(record.key) {
                batch.push(record.key, &record.op());
                in_left.push(record);
            }
        }
        let bytes = encode_routed_batch(left, &batch);
        let (range, decoded) = decode_routed_batch(&bytes).unwrap();
        assert_eq!(range, left);
        let decoded: Vec<_> =
            decoded.iter().map(|(k, op)| StreamRecord::new(k, op)).collect();
        assert_eq!(decoded, in_left);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_routed_batch(&bad), Err(BatchError::BadMagic(_))));
        // Truncated header.
        assert!(matches!(
            decode_routed_batch(&bytes[..BATCH_HEADER_LEN - 1]),
            Err(BatchError::TruncatedHeader { .. })
        ));
        // Truncated payload (declared length no longer matches).
        if !batch.is_empty() {
            assert!(matches!(
                decode_routed_batch(&bytes[..bytes.len() - 1]),
                Err(BatchError::TruncatedPayload { .. })
            ));
        }
        // Malformed range header.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&200u32.to_le_bytes());
        assert!(matches!(decode_routed_batch(&bad), Err(BatchError::BadRange(_))));
        // A key routed to the wrong shard is rejected, not audited.
        let misrouted = encode_routed_batch(right, &batch);
        if !batch.is_empty() {
            assert!(matches!(
                decode_routed_batch(&misrouted),
                Err(BatchError::ForeignKey { .. })
            ));
        }
        // A corrupted kind byte inside the payload is rejected. In a v2
        // frame the kind byte sits 9 bytes from the end (before the
        // 8-byte client id).
        if !batch.is_empty() {
            let mut bad = bytes.clone();
            let kind_at = bad.len() - 9;
            bad[kind_at] = 9;
            assert!(matches!(decode_routed_batch(&bad), Err(BatchError::BadKind { .. })));
        }
    }

    #[test]
    fn fingerprinted_skip_matches_fingerprinted_read() {
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();

        let mut full = FrameReader::with_fingerprint(&bytes, Fingerprint::new()).unwrap();
        assert_eq!(full.by_ref().filter_map(Result::ok).count(), 3);
        assert_eq!(full.frames_read(), 3);

        let mut skip = FrameReader::with_fingerprint(&bytes, Fingerprint::new()).unwrap();
        assert_eq!(skip.skip_raw_frames(3).unwrap(), 3);
        assert_eq!(skip.fingerprint(), full.fingerprint());
        assert!(skip.fingerprint().is_some());

        // Different bytes, different digest; skipping past the end
        // reports the shortfall.
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_record(&sample()[1]).unwrap();
        let other = writer.finish().unwrap();
        let mut diverged = FrameReader::with_fingerprint(&other, Fingerprint::new()).unwrap();
        assert_eq!(diverged.skip_raw_frames(10).unwrap(), 1);
        assert_ne!(diverged.fingerprint(), full.fingerprint());
    }
}
