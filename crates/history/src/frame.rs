//! Compact binary op frames: the fixed-width twin of the NDJSON codec.
//!
//! One operation is one 37-byte little-endian frame:
//!
//! ```text
//! offset  size  field
//!      0     8  key     (u64 LE)
//!      8     8  value   (u64 LE)
//!     16     8  start   (u64 LE)
//!     24     8  finish  (u64 LE)
//!     32     4  weight  (u32 LE)
//!     36     1  kind    (0 = read, 1 = write)
//! ```
//!
//! The format serves two roles:
//!
//! * **In process** — [`FrameBatch`] is the shard-channel payload of the
//!   streaming pipeline: one flat allocation per batch instead of a
//!   `Vec<(u64, Operation)>` per send, and the natural wire format once
//!   shards live in other processes.
//! * **On disk / on the wire** — a stream file is the 8-byte magic
//!   [`FRAME_MAGIC`] followed by consecutive frames (`kav gen --format
//!   binary`, `kav stream --format binary`). [`FrameReader`] mirrors the
//!   NDJSON readers' accounting: frames take the place of lines in
//!   checkpoint positions, and the resume [`Fingerprint`] chain digests
//!   one chunk per frame — so a checkpoint records which format produced
//!   it, and cross-format resume fails the fingerprint check instead of
//!   silently mixing formats.

use crate::fxhash::Fingerprint;
use crate::ndjson::{NdjsonError, StreamRecord};
use crate::{OpKind, Operation, Time, Value, Weight};
use std::fs;
use std::path::Path;

/// Leading magic of a binary stream file; also versions the layout.
pub const FRAME_MAGIC: [u8; 8] = *b"KAVF0001";

/// Size of one encoded frame in bytes.
pub const FRAME_LEN: usize = 37;

const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;

/// Appends one operation as a 37-byte frame.
pub fn encode_frame(key: u64, op: &Operation, out: &mut Vec<u8>) {
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&op.value.0.to_le_bytes());
    out.extend_from_slice(&op.start.0.to_le_bytes());
    out.extend_from_slice(&op.finish.0.to_le_bytes());
    out.extend_from_slice(&op.weight.0.to_le_bytes());
    out.push(match op.kind {
        OpKind::Read => KIND_READ,
        OpKind::Write => KIND_WRITE,
    });
}

/// Decodes one 37-byte frame; `Err` carries the offending kind byte.
fn decode_frame(frame: &[u8]) -> Result<(u64, Operation), u8> {
    let u64_at = |off: usize| {
        u64::from_le_bytes(frame[off..off + 8].try_into().expect("8-byte slice"))
    };
    let kind = match frame[36] {
        KIND_READ => OpKind::Read,
        KIND_WRITE => OpKind::Write,
        bad => return Err(bad),
    };
    Ok((
        u64_at(0),
        Operation {
            kind,
            value: Value(u64_at(8)),
            start: Time(u64_at(16)),
            finish: Time(u64_at(24)),
            weight: Weight(u32::from_le_bytes(frame[32..36].try_into().expect("4-byte slice"))),
        },
    ))
}

/// A batch of operations in one flat frame buffer — the streaming
/// pipeline's shard-channel payload.
///
/// Frames in a batch are trusted (only [`push`](FrameBatch::push) writes
/// them), so iteration does not re-validate.
#[derive(Clone, Debug, Default)]
pub struct FrameBatch {
    bytes: Vec<u8>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// An empty batch with room for `frames` operations.
    pub fn with_capacity(frames: usize) -> Self {
        FrameBatch { bytes: Vec::with_capacity(frames * FRAME_LEN) }
    }

    /// Appends one keyed operation.
    pub fn push(&mut self, key: u64, op: &Operation) {
        encode_frame(key, op, &mut self.bytes);
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / FRAME_LEN
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Empties the batch, keeping its allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
    }

    /// Decodes the batch in push order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Operation)> + '_ {
        self.bytes.chunks_exact(FRAME_LEN).map(|frame| {
            decode_frame(frame).expect("FrameBatch frames are written by FrameBatch::push")
        })
    }
}

/// Streaming writer for the on-disk frame format: magic first, then one
/// frame per record, through a reused buffer.
pub struct FrameWriter<W: std::io::Write> {
    out: W,
    buf: Vec<u8>,
    wrote_magic: bool,
}

impl<W: std::io::Write> FrameWriter<W> {
    /// Wraps `out`; the magic goes out with the first record (or
    /// [`finish`](FrameWriter::finish), so empty streams are valid too).
    pub fn new(out: W) -> Self {
        FrameWriter { out, buf: Vec::with_capacity(FRAME_LEN), wrote_magic: false }
    }

    fn magic(&mut self) -> std::io::Result<()> {
        if !self.wrote_magic {
            self.out.write_all(&FRAME_MAGIC)?;
            self.wrote_magic = true;
        }
        Ok(())
    }

    /// Writes one record as a frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &StreamRecord) -> std::io::Result<()> {
        self.magic()?;
        self.buf.clear();
        encode_frame(record.key, &record.op(), &mut self.buf);
        self.out.write_all(&self.buf)
    }

    /// Flushes (writing the magic if nothing else was) and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.magic()?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes records as a binary frame stream file.
///
/// # Errors
///
/// Returns [`NdjsonError::Io`] on I/O failure.
pub fn write_frames<'a>(
    path: impl AsRef<Path>,
    records: impl IntoIterator<Item = &'a StreamRecord>,
) -> Result<(), NdjsonError> {
    let mut writer = FrameWriter::new(std::io::BufWriter::new(fs::File::create(path)?));
    for record in records {
        writer.write_record(record)?;
    }
    writer.finish()?;
    Ok(())
}

/// Reader over an in-memory binary frame stream (an mmap'd file or fully
/// buffered pipe) — the frame-format peer of `ndjson::SliceReader`.
///
/// Frames take the place of lines: [`frames_read`](FrameReader::frames_read)
/// is the checkpoint position unit, errors carry the 1-based frame number,
/// and the resume [`Fingerprint`] chain digests one chunk per consumed
/// frame (malformed ones included, like malformed NDJSON lines).
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    frames: u64,
    fingerprint: Option<Fingerprint>,
}

impl<'a> FrameReader<'a> {
    /// Wraps a frame stream (no fingerprinting).
    ///
    /// # Errors
    ///
    /// Rejects input that does not begin with [`FRAME_MAGIC`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, NdjsonError> {
        Self::build(bytes, None)
    }

    /// Wraps a frame stream and fingerprints every consumed frame.
    ///
    /// # Errors
    ///
    /// Rejects input that does not begin with [`FRAME_MAGIC`].
    pub fn with_fingerprint(bytes: &'a [u8], fingerprint: Fingerprint) -> Result<Self, NdjsonError> {
        Self::build(bytes, Some(fingerprint))
    }

    fn build(bytes: &'a [u8], fingerprint: Option<Fingerprint>) -> Result<Self, NdjsonError> {
        if bytes.len() < FRAME_MAGIC.len() || bytes[..FRAME_MAGIC.len()] != FRAME_MAGIC {
            return Err(NdjsonError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a kav binary frame stream (bad magic; expected KAVF0001)",
            )));
        }
        Ok(FrameReader { bytes, pos: FRAME_MAGIC.len(), frames: 0, fingerprint })
    }

    /// Frames consumed so far (malformed ones included) — the position
    /// unit checkpoints record for binary ingest, as `lines_read` is for
    /// NDJSON.
    pub fn frames_read(&self) -> u64 {
        self.frames
    }

    /// The running digest of all consumed frames, when fingerprinting.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint.as_ref().map(Fingerprint::value)
    }

    /// The next raw frame — 37 bytes, or a shorter truncated tail.
    fn peek_raw_frame(&self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        Some(&rest[..rest.len().min(FRAME_LEN)])
    }

    fn consume(&mut self, frame: &[u8]) {
        self.pos += frame.len();
        self.frames += 1;
        if let Some(fp) = &mut self.fingerprint {
            fp.update(frame);
        }
    }

    fn parse_error(&self, message: String) -> NdjsonError {
        NdjsonError::Parse {
            line: self.frames as usize,
            source: serde::DeError::custom(message).into(),
        }
    }

    /// Consumes up to `n` raw frames without decoding them (they still
    /// count toward [`frames_read`](FrameReader::frames_read) and the
    /// fingerprint; a truncated tail counts as one frame). Returns how
    /// many frames were actually available.
    ///
    /// # Errors
    ///
    /// Infallible in practice; `io::Result` for signature parity with the
    /// NDJSON readers' `skip_raw_lines`.
    pub fn skip_raw_frames(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0;
        while skipped < n {
            let Some(raw) = self.peek_raw_frame() else { break };
            self.consume(raw);
            skipped += 1;
        }
        Ok(skipped)
    }
}

impl Iterator for FrameReader<'_> {
    type Item = Result<StreamRecord, NdjsonError>;

    fn next(&mut self) -> Option<Self::Item> {
        let raw = self.peek_raw_frame()?;
        self.consume(raw);
        if raw.len() < FRAME_LEN {
            return Some(Err(self.parse_error(format!(
                "truncated frame: {} trailing bytes (frames are {FRAME_LEN} bytes)",
                raw.len()
            ))));
        }
        match decode_frame(raw) {
            Ok((key, op)) => Some(Ok(StreamRecord::new(key, op))),
            Err(bad) => Some(Err(
                self.parse_error(format!("invalid kind byte {bad} (0 = read, 1 = write)"))
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Operation::write(Value(1), Time(0), Time(10))),
            StreamRecord::new(3, Operation::read(Value(1), Time(12), Time(20))),
            StreamRecord::new(
                u64::MAX,
                Operation::weighted_write(Value(u64::MAX), Time(14), Time(30), Weight(u32::MAX)),
            ),
        ]
    }

    #[test]
    fn frame_roundtrip_preserves_records() {
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        assert_eq!(bytes.len(), FRAME_MAGIC.len() + sample().len() * FRAME_LEN);
        let decoded: Vec<_> =
            FrameReader::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn batch_roundtrip_preserves_push_order() {
        let mut batch = FrameBatch::with_capacity(3);
        assert!(batch.is_empty());
        for record in sample() {
            batch.push(record.key, &record.op());
        }
        assert_eq!(batch.len(), 3);
        let decoded: Vec<_> = batch.iter().map(|(k, op)| StreamRecord::new(k, op)).collect();
        assert_eq!(decoded, sample());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
    }

    #[test]
    fn bad_magic_truncation_and_bad_kind_are_rejected() {
        assert!(matches!(FrameReader::new(b"NOPE"), Err(NdjsonError::Io(_))));
        assert!(matches!(FrameReader::new(b"KAVF9999AAAA"), Err(NdjsonError::Io(_))));

        // An empty stream is just the magic.
        let empty = FrameWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(empty, FRAME_MAGIC);
        assert_eq!(FrameReader::new(&empty).unwrap().count(), 0);

        // Truncated tail: one good frame then half a frame.
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_record(&sample()[0]).unwrap();
        writer.write_record(&sample()[1]).unwrap();
        let mut bytes = writer.finish().unwrap();
        bytes.truncate(FRAME_MAGIC.len() + FRAME_LEN + 10);
        let mut reader = FrameReader::new(&bytes).unwrap();
        assert_eq!(reader.next().unwrap().unwrap(), sample()[0]);
        match reader.next().unwrap().unwrap_err() {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(reader.next().is_none());

        // A flipped kind byte errors with the frame number and skips on.
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let mut bytes = writer.finish().unwrap();
        bytes[FRAME_MAGIC.len() + FRAME_LEN + 36] = 7;
        let mut reader = FrameReader::new(&bytes).unwrap();
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap().unwrap_err() {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert_eq!(reader.next().unwrap().unwrap(), sample()[2]);
    }

    #[test]
    fn fingerprinted_skip_matches_fingerprinted_read() {
        let mut writer = FrameWriter::new(Vec::new());
        for record in sample() {
            writer.write_record(&record).unwrap();
        }
        let bytes = writer.finish().unwrap();

        let mut full = FrameReader::with_fingerprint(&bytes, Fingerprint::new()).unwrap();
        assert_eq!(full.by_ref().filter_map(Result::ok).count(), 3);
        assert_eq!(full.frames_read(), 3);

        let mut skip = FrameReader::with_fingerprint(&bytes, Fingerprint::new()).unwrap();
        assert_eq!(skip.skip_raw_frames(3).unwrap(), 3);
        assert_eq!(skip.fingerprint(), full.fingerprint());
        assert!(skip.fingerprint().is_some());

        // Different bytes, different digest; skipping past the end
        // reports the shortfall.
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_record(&sample()[1]).unwrap();
        let other = writer.finish().unwrap();
        let mut diverged = FrameReader::with_fingerprint(&other, Fingerprint::new()).unwrap();
        assert_eq!(diverged.skip_raw_frames(10).unwrap(), 1);
        assert_ne!(diverged.fingerprint(), full.fingerprint());
    }
}
