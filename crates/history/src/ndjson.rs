//! Newline-delimited JSON (NDJSON) codec for operation streams.
//!
//! The streaming pipeline exchanges operations as one JSON object per
//! line, each tagging the register (`key`) it acts on:
//!
//! ```text
//! {"key":0,"kind":"write","value":1,"start":0,"finish":10,"weight":1}
//! {"key":0,"kind":"read","value":1,"start":12,"finish":20}
//! ```
//!
//! Field reference (see also the README's schema section):
//!
//! * `key` — register identifier; optional, defaults to `0`. Verification
//!   is per key (§II-B locality), so records of different keys are fully
//!   independent.
//! * `kind` — `"read"` or `"write"`.
//! * `value` — value written or returned. Every write of a key must store
//!   a distinct value.
//! * `start` / `finish` — invocation and response times, `start < finish`;
//!   dimensionless ticks (only their order matters).
//! * `weight` — positive k-WAV weight; optional, defaults to `1`.
//! * `client` — issuing client (session) id for session-aware consistency
//!   models; optional, defaults to `0` (untagged — no session
//!   information). Untagged records serialise without the field, so
//!   pre-session streams round-trip byte-identically.
//!
//! Records of the same key must appear in strictly increasing `finish`
//! order (completion order); different keys may interleave arbitrarily.
//! Blank lines are ignored.

use crate::fxhash::Fingerprint;
use crate::{OpKind, Operation, Time, Value, Weight, UNTAGGED_CLIENT};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// One line of an NDJSON operation stream: an operation plus its register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Register the operation acts on (defaults to `0`).
    #[serde(default)]
    pub key: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Value written or returned.
    pub value: Value,
    /// Invocation time.
    pub start: Time,
    /// Response time; must be strictly greater than `start`.
    pub finish: Time,
    /// k-WAV weight (defaults to `1`).
    #[serde(default)]
    pub weight: Weight,
    /// Issuing client (session) id; `0` (untagged) when absent. Untagged
    /// records omit the field on the wire.
    #[serde(default, skip_serializing_if = "client_is_untagged")]
    pub client: u64,
}

/// Serialisation predicate: untagged records omit the `client` field.
fn client_is_untagged(client: &u64) -> bool {
    *client == UNTAGGED_CLIENT
}

impl StreamRecord {
    /// Tags `op` with the register `key`.
    pub fn new(key: u64, op: Operation) -> Self {
        StreamRecord {
            key,
            kind: op.kind,
            value: op.value,
            start: op.start,
            finish: op.finish,
            weight: op.weight,
            client: op.client,
        }
    }

    /// The record's operation, without the key tag.
    pub fn op(&self) -> Operation {
        Operation {
            kind: self.kind,
            value: self.value,
            start: self.start,
            finish: self.finish,
            weight: self.weight,
            client: self.client,
        }
    }
}

/// Error reading an NDJSON stream.
#[derive(Debug)]
pub enum NdjsonError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number.
    Parse {
        /// Line the record occupies in the input.
        line: usize,
        /// What was wrong with it.
        source: serde_json::Error,
    },
}

impl fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdjsonError::Io(e) => write!(f, "i/o error: {e}"),
            NdjsonError::Parse { line, source } => {
                write!(f, "line {line}: invalid stream record: {source}")
            }
        }
    }
}

impl Error for NdjsonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NdjsonError::Io(e) => Some(e),
            NdjsonError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for NdjsonError {
    fn from(e: std::io::Error) -> Self {
        NdjsonError::Io(e)
    }
}

/// Parses one NDJSON line.
///
/// # Errors
///
/// Returns the underlying JSON error on malformed input.
///
/// # Examples
///
/// ```
/// use kav_history::ndjson;
/// use kav_history::Value;
///
/// let record =
///     ndjson::parse_line(r#"{"kind":"write","value":7,"start":0,"finish":3}"#)?;
/// assert_eq!(record.key, 0);
/// assert_eq!(record.value, Value(7));
/// # Ok::<(), serde_json::Error>(())
/// ```
pub fn parse_line(line: &str) -> Result<StreamRecord, serde_json::Error> {
    serde_json::from_str(line)
}

// ---------------------------------------------------------------------------
// Zero-copy byte-slice decoder
// ---------------------------------------------------------------------------

/// Maximum JSON nesting depth, matching the reference parser's recursion
/// limit (serde_json's default of 128).
const MAX_DEPTH: usize = 128;

/// Decoded name/tag scratch: sized for every known field name and `kind`
/// tag; longer content cannot match any of them and is tracked as
/// overflow (while the string is still fully validated).
struct SmallBuf {
    data: [u8; 24],
    len: usize,
    overflow: bool,
}

impl SmallBuf {
    fn new() -> Self {
        SmallBuf { data: [0; 24], len: 0, overflow: false }
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        let end = self.len + bytes.len();
        if end > self.data.len() {
            self.overflow = true;
            return;
        }
        self.data[self.len..end].copy_from_slice(bytes);
        self.len = end;
    }

    fn push_char(&mut self, c: char) {
        let mut utf8 = [0u8; 4];
        self.push_bytes(c.encode_utf8(&mut utf8).as_bytes());
    }

    /// The decoded content, or `None` if it outgrew the buffer.
    fn as_bytes(&self) -> Option<&[u8]> {
        if self.overflow {
            None
        } else {
            Some(&self.data[..self.len])
        }
    }
}

/// Outcome of scanning one JSON number token.
enum Num {
    /// Carried a decimal point or exponent.
    Float,
    /// `-`-prefixed integer in `i64` range (so `-0` is `Neg(0)`).
    Neg(i64),
    /// Non-negative integer in `u64` range.
    Pos(u64),
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn err(&self, message: &str) -> serde_json::Error {
        serde::DeError::custom(message).into()
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), serde_json::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Scans one number token with the reference grammar, applying the
    /// same parse-time range checks (integer overflow errors even inside
    /// skipped fields, exactly as the reference parser errors while
    /// building its value tree).
    fn scan_number(&mut self) -> Result<Num, serde_json::Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digit after decimal point"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            // The grammar above never fails an `f64` parse; keep the check
            // so the two decoders cannot diverge.
            text.parse::<f64>().map_err(|_| self.err("invalid number"))?;
            Ok(Num::Float)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Num::Neg).map_err(|_| self.err("number out of range"))
        } else {
            text.parse::<u64>().map(Num::Pos).map_err(|_| self.err("number out of range"))
        }
    }

    /// Parses the 4 hex digits after `\u`, leaving `pos` on the last
    /// digit (reference parser mechanics).
    fn hex4(&mut self) -> Result<u32, serde_json::Error> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Scans one string token, validating escapes exactly like the
    /// reference parser; when `out` is given, the *decoded* content is
    /// appended (field names and `kind` tags match on decoded content, so
    /// `"key"` is the `key` field there too).
    fn scan_string(&mut self, mut out: Option<&mut SmallBuf>) -> Result<(), serde_json::Error> {
        self.expect(b'"')?;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let decoded = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => c,
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    };
                    if let Some(buf) = out.as_deref_mut() {
                        buf.push_char(decoded);
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar's worth of bytes.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Some(buf) = out.as_deref_mut() {
                        buf.push_bytes(&self.bytes[start..self.pos]);
                    }
                }
            }
        }
    }

    fn scan_keyword(&mut self, word: &str) -> Result<(), serde_json::Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    /// Validates and skips one JSON value of any shape, mirroring the
    /// reference grammar (depth limit, string escapes, number range
    /// checks) without building a value tree. Used for unknown fields and
    /// for later duplicates of known ones (first occurrence wins, like
    /// the reference decoder's `Value::get`).
    fn scan_value(&mut self, depth: usize) -> Result<(), serde_json::Error> {
        if depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => {
                self.pos += 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    if self.peek() != Some(b'"') {
                        return Err(self.err("expected object key"));
                    }
                    self.scan_string(None)?;
                    self.expect(b':')?;
                    self.scan_value(depth + 1)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.scan_value(depth + 1)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => self.scan_string(None),
            Some(b't') => self.scan_keyword("true"),
            Some(b'f') => self.scan_keyword("false"),
            Some(b'n') => self.scan_keyword("null"),
            Some(b'-' | b'0'..=b'9') => self.scan_number().map(|_| ()),
            Some(_) => Err(self.err("expected value")),
        }
    }

    /// Scans one `u64` field value (`key`, `value`, `start`, `finish`):
    /// the reference decoder accepts a non-negative integer (including
    /// `-0`) and rejects floats, negatives and non-numbers.
    fn scan_u64_field(&mut self) -> Result<u64, serde_json::Error> {
        match self.peek() {
            Some(b'-' | b'0'..=b'9') => match self.scan_number()? {
                Num::Pos(u) => Ok(u),
                Num::Neg(i) => u64::try_from(i)
                    .map_err(|_| self.err(&format!("invalid value {i} for unsigned integer"))),
                Num::Float => Err(self.err("expected an unsigned integer")),
            },
            _ => Err(self.err("expected an unsigned integer")),
        }
    }

    /// Scans the `weight` field: a `u64` additionally bounded to `u32`.
    fn scan_u32_field(&mut self) -> Result<u32, serde_json::Error> {
        let raw = self.scan_u64_field()?;
        u32::try_from(raw).map_err(|_| self.err(&format!("integer {raw} out of range for u32")))
    }

    /// Scans the `kind` field: a string whose decoded content is `read`
    /// or `write` (the reference decoder matches unit variants on the
    /// decoded string, so escapes like `"read"` are accepted).
    fn scan_kind_field(&mut self) -> Result<OpKind, serde_json::Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected enum OpKind"));
        }
        let mut tag = SmallBuf::new();
        self.scan_string(Some(&mut tag))?;
        match tag.as_bytes() {
            Some(b"read") => Ok(OpKind::Read),
            Some(b"write") => Ok(OpKind::Write),
            _ => Err(self.err("unknown variant of OpKind")),
        }
    }
}

/// Parses one NDJSON line directly from bytes — the zero-copy hot path.
///
/// A hand-rolled field scanner over `&[u8]`: no intermediate `String` or
/// `serde_json::Value` is built. It accepts exactly the records
/// [`parse_line`] accepts and rejects exactly the lines it rejects —
/// including duplicate-field, unknown-field, escape, depth-limit and
/// number-range behavior (property-tested in
/// `tests/decoder_equivalence.rs`). Error *messages* may differ; verdicts
/// never do. [`parse_line`] remains the reference decoder.
///
/// # Errors
///
/// Returns a JSON error on malformed input, exactly when the reference
/// decoder would.
///
/// # Examples
///
/// ```
/// use kav_history::ndjson;
/// use kav_history::Value;
///
/// let record = ndjson::parse_line_bytes(
///     br#"{"kind":"write","value":7,"start":0,"finish":3}"#,
/// )?;
/// assert_eq!(record.key, 0);
/// assert_eq!(record.value, Value(7));
/// # Ok::<(), serde_json::Error>(())
/// ```
pub fn parse_line_bytes(bytes: &[u8]) -> Result<StreamRecord, serde_json::Error> {
    let mut s = Scanner { bytes, pos: 0 };
    match s.peek() {
        Some(b'{') => {}
        // A line whose top-level value is anything else is an error on the
        // reference path too (a syntax error or "expected struct"), so
        // classification alone decides the verdict.
        Some(_) => return Err(s.err("expected struct StreamRecord")),
        None => return Err(s.err("unexpected end of input")),
    }
    s.pos += 1;
    let mut key: Option<u64> = None;
    let mut kind: Option<OpKind> = None;
    let mut value: Option<u64> = None;
    let mut start: Option<u64> = None;
    let mut finish: Option<u64> = None;
    let mut weight: Option<u32> = None;
    let mut client: Option<u64> = None;
    if s.peek() == Some(b'}') {
        s.pos += 1;
    } else {
        loop {
            if s.peek() != Some(b'"') {
                return Err(s.err("expected object key"));
            }
            let mut name = SmallBuf::new();
            s.scan_string(Some(&mut name))?;
            s.expect(b':')?;
            match name.as_bytes() {
                Some(b"key") if key.is_none() => key = Some(s.scan_u64_field()?),
                Some(b"kind") if kind.is_none() => kind = Some(s.scan_kind_field()?),
                Some(b"value") if value.is_none() => value = Some(s.scan_u64_field()?),
                Some(b"start") if start.is_none() => start = Some(s.scan_u64_field()?),
                Some(b"finish") if finish.is_none() => finish = Some(s.scan_u64_field()?),
                Some(b"weight") if weight.is_none() => weight = Some(s.scan_u32_field()?),
                Some(b"client") if client.is_none() => client = Some(s.scan_u64_field()?),
                // Unknown fields and later duplicates are validated and
                // skipped; field values sit at nesting depth 1.
                _ => s.scan_value(1)?,
            }
            match s.peek() {
                Some(b',') => s.pos += 1,
                Some(b'}') => {
                    s.pos += 1;
                    break;
                }
                _ => return Err(s.err("expected `,` or `}`")),
            }
        }
    }
    s.skip_ws();
    if s.pos != bytes.len() {
        return Err(s.err("trailing characters"));
    }
    let missing = |field: &str| -> serde_json::Error {
        serde::DeError::custom(format!("missing field `{field}`")).into()
    };
    Ok(StreamRecord {
        key: key.unwrap_or(0),
        kind: kind.ok_or_else(|| missing("kind"))?,
        value: Value(value.ok_or_else(|| missing("value"))?),
        start: Time(start.ok_or_else(|| missing("start"))?),
        finish: Time(finish.ok_or_else(|| missing("finish"))?),
        weight: weight.map_or(Weight::UNIT, Weight),
        client: client.unwrap_or(UNTAGGED_CLIENT),
    })
}

/// Serialises one record as a single NDJSON line (no trailing newline).
///
/// Allocates a fresh `String` per call; the hot write path is
/// [`StreamWriter`], which reuses one buffer and produces byte-identical
/// lines.
pub fn to_line(record: &StreamRecord) -> String {
    serde_json::to_string(record).expect("StreamRecord serialisation is infallible")
}

/// Appends one record to `out` as a single NDJSON line (no trailing
/// newline), byte-identical to [`to_line`] without allocating.
pub fn write_line_into(record: &StreamRecord, out: &mut String) {
    out.push_str("{\"key\":");
    push_u64(out, record.key);
    out.push_str(",\"kind\":");
    out.push_str(match record.kind {
        OpKind::Read => "\"read\"",
        OpKind::Write => "\"write\"",
    });
    out.push_str(",\"value\":");
    push_u64(out, record.value.0);
    out.push_str(",\"start\":");
    push_u64(out, record.start.0);
    out.push_str(",\"finish\":");
    push_u64(out, record.finish.0);
    out.push_str(",\"weight\":");
    push_u64(out, u64::from(record.weight.0));
    if record.client != UNTAGGED_CLIENT {
        out.push_str(",\"client\":");
        push_u64(out, record.client);
    }
    out.push('}');
}

/// Appends the decimal form of `n` without going through `fmt`.
fn push_u64(out: &mut String, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("decimal digits are ASCII"));
}

/// Buffered NDJSON writer reusing one line buffer across records — the
/// write-side twin of the zero-copy decoder. `kav gen --out`,
/// `kav simulate --out` and [`write_stream`] route through it; the output
/// is byte-for-byte what writing [`to_line`] plus `\n` per record yields.
pub struct StreamWriter<W: std::io::Write> {
    out: W,
    buf: String,
}

impl<W: std::io::Write> StreamWriter<W> {
    /// Wraps `out`; call [`finish`](StreamWriter::finish) when done to
    /// flush.
    pub fn new(out: W) -> Self {
        StreamWriter { out, buf: String::with_capacity(128) }
    }

    /// Writes one record plus the line terminator.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &StreamRecord) -> std::io::Result<()> {
        self.buf.clear();
        write_line_into(record, &mut self.buf);
        self.buf.push('\n');
        self.out.write_all(self.buf.as_bytes())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader over any [`BufRead`], yielding records with 1-based
/// line numbers attached to errors. Blank lines are skipped.
///
/// For checkpointable audits the reader can also maintain a running
/// [`Fingerprint`] of every *raw line* it consumes (including blank and
/// malformed ones): a resumed audit re-reads the already-processed prefix
/// with [`skip_raw_lines`](Reader::skip_raw_lines) and compares digests to
/// prove it is continuing the same input.
pub struct Reader<R> {
    input: R,
    line: u64,
    buf: String,
    fingerprint: Option<Fingerprint>,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered reader (no fingerprinting).
    pub fn new(input: R) -> Self {
        Reader { input, line: 0, buf: String::new(), fingerprint: None }
    }

    /// Wraps a buffered reader and fingerprints every consumed line —
    /// pass [`Fingerprint::new`] for a fresh stream, or a digest carried
    /// over from a checkpoint to continue its chain.
    pub fn with_fingerprint(input: R, fingerprint: Fingerprint) -> Self {
        Reader { input, line: 0, buf: String::new(), fingerprint: Some(fingerprint) }
    }

    /// Lines consumed so far (blank and malformed lines included).
    pub fn lines_read(&self) -> u64 {
        self.line
    }

    /// The running digest of all consumed lines, when fingerprinting.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint.as_ref().map(Fingerprint::value)
    }

    /// Consumes up to `n` raw lines without parsing them (they still count
    /// toward [`lines_read`](Reader::lines_read) and the fingerprint).
    /// Returns how many lines were actually available before end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn skip_raw_lines(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0;
        while skipped < n {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                break;
            }
            self.consume_line();
            skipped += 1;
        }
        Ok(skipped)
    }

    /// Counts and fingerprints the line currently in `buf`.
    fn consume_line(&mut self) {
        self.line += 1;
        if let Some(fp) = &mut self.fingerprint {
            fp.update(self.buf.as_bytes());
        }
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<StreamRecord, NdjsonError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(e.into())),
            }
            self.consume_line();
            let text = self.buf.trim();
            if text.is_empty() {
                continue;
            }
            return Some(parse_line(text).map_err(|source| NdjsonError::Parse {
                line: self.line as usize,
                source,
            }));
        }
    }
}

/// Streaming reader over an in-memory byte slice (an mmap'd file or a
/// fully buffered pipe), decoding through [`parse_line_bytes`] — the
/// zero-copy twin of [`Reader`].
///
/// Line accounting, blank-line handling, parse verdicts, 1-based error
/// lines and the [`Fingerprint`] chain are identical to [`Reader`] over
/// the same bytes (property-tested), so checkpoints written against one
/// reader resume against the other.
pub struct SliceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u64,
    fingerprint: Option<Fingerprint>,
}

impl<'a> SliceReader<'a> {
    /// Wraps a byte slice (no fingerprinting).
    pub fn new(bytes: &'a [u8]) -> Self {
        SliceReader { bytes, pos: 0, line: 0, fingerprint: None }
    }

    /// Wraps a byte slice and fingerprints every consumed line — pass
    /// [`Fingerprint::new`] for a fresh stream, or a digest carried over
    /// from a checkpoint to continue its chain.
    pub fn with_fingerprint(bytes: &'a [u8], fingerprint: Fingerprint) -> Self {
        SliceReader { bytes, pos: 0, line: 0, fingerprint: Some(fingerprint) }
    }

    /// Lines consumed so far (blank and malformed lines included).
    pub fn lines_read(&self) -> u64 {
        self.line
    }

    /// The running digest of all consumed lines, when fingerprinting.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint.as_ref().map(Fingerprint::value)
    }

    /// The next raw line including its `\n` terminator (the final line
    /// may lack one); `None` at end of input. Does not consume.
    fn peek_raw_line(&self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        let end = rest.iter().position(|&b| b == b'\n').map_or(rest.len(), |i| i + 1);
        Some(&rest[..end])
    }

    /// Counts and fingerprints a peeked raw line.
    fn consume(&mut self, line: &[u8]) {
        self.pos += line.len();
        self.line += 1;
        if let Some(fp) = &mut self.fingerprint {
            fp.update(line);
        }
    }

    /// Consumes up to `n` raw lines without parsing them (they still
    /// count toward [`lines_read`](SliceReader::lines_read) and the
    /// fingerprint). Returns how many lines were actually available.
    ///
    /// # Errors
    ///
    /// Rejects invalid UTF-8, like [`Reader::skip_raw_lines`].
    pub fn skip_raw_lines(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0;
        while skipped < n {
            let Some(raw) = self.peek_raw_line() else { break };
            if std::str::from_utf8(raw).is_err() {
                self.pos += raw.len();
                return Err(invalid_utf8());
            }
            self.consume(raw);
            skipped += 1;
        }
        Ok(skipped)
    }
}

fn invalid_utf8() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "stream did not contain valid UTF-8")
}

impl Iterator for SliceReader<'_> {
    type Item = Result<StreamRecord, NdjsonError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let raw = self.peek_raw_line()?;
            let Ok(text) = std::str::from_utf8(raw) else {
                // Mirror `read_line`: the bad bytes are consumed from the
                // source but neither counted nor fingerprinted.
                self.pos += raw.len();
                return Some(Err(NdjsonError::Io(invalid_utf8())));
            };
            self.consume(raw);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            return Some(parse_line_bytes(text.as_bytes()).map_err(|source| {
                NdjsonError::Parse { line: self.line as usize, source }
            }));
        }
    }
}

/// Reads a whole NDJSON file into memory.
///
/// # Errors
///
/// Returns [`NdjsonError`] on I/O failure or the first malformed record.
pub fn read_stream(path: impl AsRef<Path>) -> Result<Vec<StreamRecord>, NdjsonError> {
    Reader::new(BufReader::new(fs::File::open(path)?)).collect()
}

/// Writes records as NDJSON, one per line.
///
/// # Errors
///
/// Returns [`NdjsonError::Io`] on I/O failure.
pub fn write_stream<'a>(
    path: impl AsRef<Path>,
    records: impl IntoIterator<Item = &'a StreamRecord>,
) -> Result<(), NdjsonError> {
    let mut writer = StreamWriter::new(std::io::BufWriter::new(fs::File::create(path)?));
    for record in records {
        writer.write_record(record)?;
    }
    writer.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Operation::write(Value(1), Time(0), Time(10))),
            StreamRecord::new(3, Operation::read(Value(1), Time(12), Time(20))),
            StreamRecord::new(
                0,
                Operation::weighted_write(Value(2), Time(14), Time(30), Weight(5)),
            ),
        ]
    }

    #[test]
    fn line_roundtrip_preserves_records() {
        for record in sample() {
            let line = to_line(&record);
            assert_eq!(parse_line(&line).unwrap(), record);
        }
    }

    #[test]
    fn key_and_weight_default_when_omitted() {
        let record =
            parse_line(r#"{"kind":"read","value":9,"start":1,"finish":4}"#).unwrap();
        assert_eq!(record.key, 0);
        assert_eq!(record.weight, Weight::UNIT);
        assert_eq!(record.op(), Operation::read(Value(9), Time(1), Time(4)));
    }

    #[test]
    fn reader_skips_blanks_and_numbers_errors() {
        let text = "\n{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":2}\n\n{ bad\n";
        let mut reader = Reader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        match err {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(reader.next().is_none());
    }

    #[test]
    fn fingerprinted_skip_matches_fingerprinted_read() {
        let text = "\n{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":2}\n{ bad\n";
        // Read everything, fingerprinting as we go.
        let mut full = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert!(full.next().unwrap().is_ok());
        assert!(full.next().unwrap().is_err());
        assert!(full.next().is_none());
        assert_eq!(full.lines_read(), 3);
        // Skipping the same three raw lines yields the same digest.
        let mut skip = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(skip.skip_raw_lines(3).unwrap(), 3);
        assert_eq!(skip.lines_read(), 3);
        assert_eq!(skip.fingerprint(), full.fingerprint());
        assert!(skip.fingerprint().is_some());
        // A diverging prefix yields a different digest.
        let other = "\n{\"kind\":\"write\",\"value\":9,\"start\":0,\"finish\":2}\n{ bad\n";
        let mut diverged = Reader::with_fingerprint(other.as_bytes(), Fingerprint::new());
        diverged.skip_raw_lines(3).unwrap();
        assert_ne!(diverged.fingerprint(), full.fingerprint());
        // Skipping past the end reports the shortfall; plain readers have
        // no fingerprint at all.
        let mut short = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(short.skip_raw_lines(10).unwrap(), 3);
        assert_eq!(Reader::new(text.as_bytes()).fingerprint(), None);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kav_history_ndjson_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.ndjson");
        let records = sample();
        write_stream(&path, &records).unwrap();
        assert_eq!(read_stream(&path).unwrap(), records);
        fs::remove_file(path).ok();
    }

    #[test]
    fn missing_required_field_is_an_error() {
        assert!(parse_line(r#"{"kind":"write","value":1,"start":0}"#).is_err());
        assert!(parse_line("").is_err());
    }

    #[test]
    fn write_line_into_matches_the_reference_encoder() {
        let mut buf = String::new();
        for record in sample() {
            buf.clear();
            write_line_into(&record, &mut buf);
            assert_eq!(buf, to_line(&record));
        }
        // Extremes of every numeric field.
        let record = StreamRecord {
            key: u64::MAX,
            kind: OpKind::Read,
            value: Value(0),
            start: Time(u64::MAX - 1),
            finish: Time(u64::MAX),
            weight: Weight(u32::MAX),
            client: u64::MAX,
        };
        buf.clear();
        write_line_into(&record, &mut buf);
        assert_eq!(buf, to_line(&record));
        // Client-tagged records carry the field; untagged ones omit it.
        let tagged =
            StreamRecord::new(1, Operation::write(Value(3), Time(0), Time(5)).with_client(9));
        buf.clear();
        write_line_into(&tagged, &mut buf);
        assert_eq!(buf, to_line(&tagged));
        assert!(buf.contains("\"client\":9"), "missing client field: {buf}");
        let untagged = StreamRecord::new(1, Operation::write(Value(3), Time(0), Time(5)));
        buf.clear();
        write_line_into(&untagged, &mut buf);
        assert_eq!(buf, to_line(&untagged));
        assert!(!buf.contains("client"), "untagged record leaked a client field: {buf}");
    }

    #[test]
    fn stream_writer_output_is_byte_identical_to_to_line() {
        let mut writer = StreamWriter::new(Vec::new());
        let mut expected = String::new();
        for record in sample() {
            writer.write_record(&record).unwrap();
            expected.push_str(&to_line(&record));
            expected.push('\n');
        }
        assert_eq!(writer.finish().unwrap(), expected.into_bytes());
    }

    #[test]
    fn byte_decoder_accepts_what_the_reference_accepts() {
        for line in [
            r#"{"kind":"write","value":7,"start":0,"finish":3}"#,
            r#"{"key":9,"kind":"read","value":7,"start":0,"finish":3,"weight":2}"#,
            r#"{"kind":"read","value":7,"start":0,"finish":3,"client":12}"#,
            r#"{"kind":"read","value":7,"start":0,"finish":3,"client":5,"client":6}"#,
            // Escaped field names and tags decode before matching:
            // `\u006b` is `k`, so this sets `key` and a `kind` of "read".
            "{\"\\u006bey\":5,\"kind\":\"re\\u0061d\",\"value\":1,\"start\":0,\"finish\":1}",
            // Unknown fields of any shape are skipped.
            r#"{"kind":"read","value":1,"start":0,"finish":1,"x":[{"y":null},1.5,"s"]}"#,
            // Duplicate fields: first occurrence wins.
            r#"{"kind":"read","kind":"write","value":1,"value":2,"start":0,"finish":1}"#,
            // `-0` is an in-range unsigned integer.
            r#"{"kind":"read","value":-0,"start":0,"finish":1}"#,
            " {\t\"kind\" : \"read\", \"value\":1, \"start\":0, \"finish\":1 } ",
        ] {
            let by_str = parse_line(line).unwrap();
            let by_bytes = parse_line_bytes(line.as_bytes()).unwrap();
            assert_eq!(by_str, by_bytes, "decoders disagree on {line:?}");
        }
    }

    #[test]
    fn byte_decoder_rejects_what_the_reference_rejects() {
        for line in [
            "",
            "null",
            "[]",
            r#"{"kind":"write","value":1,"start":0}"#,
            r#"{"kind":"write","value":1,"start":0,"finish":2} extra"#,
            r#"{"kind":"writ","value":1,"start":0,"finish":2}"#,
            r#"{"kind":"write","value":1.5,"start":0,"finish":2}"#,
            r#"{"kind":"write","value":-1,"start":0,"finish":2}"#,
            r#"{"kind":"write","value":01,"start":0,"finish":2}"#,
            r#"{"kind":"write","value":18446744073709551616,"start":0,"finish":2}"#,
            r#"{"kind":"write","value":1,"start":0,"finish":2,"weight":4294967296}"#,
            // Range checks apply inside skipped fields too.
            r#"{"kind":"write","value":1,"start":0,"finish":2,"x":18446744073709551616}"#,
            r#"{"kind":"write","value":1,"start":0,"finish":2,"x":"\ud800"}"#,
            r#"{"kind":"write","value":1,"start":0,"finish":2,}"#,
            r#"{"kind":"write","value":1,"start":0,"finish":2"#,
        ] {
            assert!(parse_line(line).is_err(), "reference accepted {line:?}");
            assert!(parse_line_bytes(line.as_bytes()).is_err(), "bytes accepted {line:?}");
        }
        // The recursion limit matches: 127 nested arrays in an unknown
        // field pass (the field value sits at depth 1), 128 do not — on
        // both decoders.
        let nest = |n: usize| {
            format!(
                "{{\"kind\":\"read\",\"value\":1,\"start\":0,\"finish\":1,\"x\":{}0{}}}",
                "[".repeat(n),
                "]".repeat(n)
            )
        };
        assert!(parse_line(&nest(126)).is_ok());
        assert!(parse_line_bytes(nest(126).as_bytes()).is_ok());
        assert_eq!(
            parse_line(&nest(127)).is_ok(),
            parse_line_bytes(nest(127).as_bytes()).is_ok()
        );
        assert!(parse_line(&nest(200)).is_err());
        assert!(parse_line_bytes(nest(200).as_bytes()).is_err());
    }

    #[test]
    fn slice_reader_matches_reader_on_records_errors_and_fingerprints() {
        let text = "\n{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":2}\n\n{ bad\n{\"kind\":\"read\",\"value\":1,\"start\":3,\"finish\":4}";
        let mut by_io = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        let mut by_slice = SliceReader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        loop {
            match (by_io.next(), by_slice.next()) {
                (None, None) => break,
                (Some(Ok(a)), Some(Ok(b))) => assert_eq!(a, b),
                (Some(Err(NdjsonError::Parse { line: a, .. })), Some(Err(NdjsonError::Parse { line: b, .. }))) => {
                    assert_eq!(a, b)
                }
                (a, b) => panic!("readers diverged: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(by_io.lines_read(), by_slice.lines_read());
        assert_eq!(by_io.fingerprint(), by_slice.fingerprint());
        assert!(by_io.fingerprint().is_some());
        // Cross-path skip: Reader fingerprints a prefix, SliceReader
        // continues the chain, and vice versa.
        let mut skip_io = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(skip_io.skip_raw_lines(5).unwrap(), 5);
        let mut skip_slice = SliceReader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(skip_slice.skip_raw_lines(5).unwrap(), 5);
        assert_eq!(skip_io.fingerprint(), skip_slice.fingerprint());
        assert_eq!(skip_io.fingerprint(), by_io.fingerprint());
    }
}
