//! Newline-delimited JSON (NDJSON) codec for operation streams.
//!
//! The streaming pipeline exchanges operations as one JSON object per
//! line, each tagging the register (`key`) it acts on:
//!
//! ```text
//! {"key":0,"kind":"write","value":1,"start":0,"finish":10,"weight":1}
//! {"key":0,"kind":"read","value":1,"start":12,"finish":20}
//! ```
//!
//! Field reference (see also the README's schema section):
//!
//! * `key` — register identifier; optional, defaults to `0`. Verification
//!   is per key (§II-B locality), so records of different keys are fully
//!   independent.
//! * `kind` — `"read"` or `"write"`.
//! * `value` — value written or returned. Every write of a key must store
//!   a distinct value.
//! * `start` / `finish` — invocation and response times, `start < finish`;
//!   dimensionless ticks (only their order matters).
//! * `weight` — positive k-WAV weight; optional, defaults to `1`.
//!
//! Records of the same key must appear in strictly increasing `finish`
//! order (completion order); different keys may interleave arbitrarily.
//! Blank lines are ignored.

use crate::fxhash::Fingerprint;
use crate::{OpKind, Operation, Time, Value, Weight};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;

/// One line of an NDJSON operation stream: an operation plus its register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Register the operation acts on (defaults to `0`).
    #[serde(default)]
    pub key: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Value written or returned.
    pub value: Value,
    /// Invocation time.
    pub start: Time,
    /// Response time; must be strictly greater than `start`.
    pub finish: Time,
    /// k-WAV weight (defaults to `1`).
    #[serde(default)]
    pub weight: Weight,
}

impl StreamRecord {
    /// Tags `op` with the register `key`.
    pub fn new(key: u64, op: Operation) -> Self {
        StreamRecord {
            key,
            kind: op.kind,
            value: op.value,
            start: op.start,
            finish: op.finish,
            weight: op.weight,
        }
    }

    /// The record's operation, without the key tag.
    pub fn op(&self) -> Operation {
        Operation {
            kind: self.kind,
            value: self.value,
            start: self.start,
            finish: self.finish,
            weight: self.weight,
        }
    }
}

/// Error reading an NDJSON stream.
#[derive(Debug)]
pub enum NdjsonError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number.
    Parse {
        /// Line the record occupies in the input.
        line: usize,
        /// What was wrong with it.
        source: serde_json::Error,
    },
}

impl fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdjsonError::Io(e) => write!(f, "i/o error: {e}"),
            NdjsonError::Parse { line, source } => {
                write!(f, "line {line}: invalid stream record: {source}")
            }
        }
    }
}

impl Error for NdjsonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NdjsonError::Io(e) => Some(e),
            NdjsonError::Parse { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for NdjsonError {
    fn from(e: std::io::Error) -> Self {
        NdjsonError::Io(e)
    }
}

/// Parses one NDJSON line.
///
/// # Errors
///
/// Returns the underlying JSON error on malformed input.
///
/// # Examples
///
/// ```
/// use kav_history::ndjson;
/// use kav_history::Value;
///
/// let record =
///     ndjson::parse_line(r#"{"kind":"write","value":7,"start":0,"finish":3}"#)?;
/// assert_eq!(record.key, 0);
/// assert_eq!(record.value, Value(7));
/// # Ok::<(), serde_json::Error>(())
/// ```
pub fn parse_line(line: &str) -> Result<StreamRecord, serde_json::Error> {
    serde_json::from_str(line)
}

/// Serialises one record as a single NDJSON line (no trailing newline).
pub fn to_line(record: &StreamRecord) -> String {
    serde_json::to_string(record).expect("StreamRecord serialisation is infallible")
}

/// Streaming reader over any [`BufRead`], yielding records with 1-based
/// line numbers attached to errors. Blank lines are skipped.
///
/// For checkpointable audits the reader can also maintain a running
/// [`Fingerprint`] of every *raw line* it consumes (including blank and
/// malformed ones): a resumed audit re-reads the already-processed prefix
/// with [`skip_raw_lines`](Reader::skip_raw_lines) and compares digests to
/// prove it is continuing the same input.
pub struct Reader<R> {
    input: R,
    line: u64,
    buf: String,
    fingerprint: Option<Fingerprint>,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered reader (no fingerprinting).
    pub fn new(input: R) -> Self {
        Reader { input, line: 0, buf: String::new(), fingerprint: None }
    }

    /// Wraps a buffered reader and fingerprints every consumed line —
    /// pass [`Fingerprint::new`] for a fresh stream, or a digest carried
    /// over from a checkpoint to continue its chain.
    pub fn with_fingerprint(input: R, fingerprint: Fingerprint) -> Self {
        Reader { input, line: 0, buf: String::new(), fingerprint: Some(fingerprint) }
    }

    /// Lines consumed so far (blank and malformed lines included).
    pub fn lines_read(&self) -> u64 {
        self.line
    }

    /// The running digest of all consumed lines, when fingerprinting.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint.as_ref().map(Fingerprint::value)
    }

    /// Consumes up to `n` raw lines without parsing them (they still count
    /// toward [`lines_read`](Reader::lines_read) and the fingerprint).
    /// Returns how many lines were actually available before end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn skip_raw_lines(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0;
        while skipped < n {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                break;
            }
            self.consume_line();
            skipped += 1;
        }
        Ok(skipped)
    }

    /// Counts and fingerprints the line currently in `buf`.
    fn consume_line(&mut self) {
        self.line += 1;
        if let Some(fp) = &mut self.fingerprint {
            fp.update(self.buf.as_bytes());
        }
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<StreamRecord, NdjsonError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(e.into())),
            }
            self.consume_line();
            let text = self.buf.trim();
            if text.is_empty() {
                continue;
            }
            return Some(parse_line(text).map_err(|source| NdjsonError::Parse {
                line: self.line as usize,
                source,
            }));
        }
    }
}

/// Reads a whole NDJSON file into memory.
///
/// # Errors
///
/// Returns [`NdjsonError`] on I/O failure or the first malformed record.
pub fn read_stream(path: impl AsRef<Path>) -> Result<Vec<StreamRecord>, NdjsonError> {
    Reader::new(BufReader::new(fs::File::open(path)?)).collect()
}

/// Writes records as NDJSON, one per line.
///
/// # Errors
///
/// Returns [`NdjsonError::Io`] on I/O failure.
pub fn write_stream<'a>(
    path: impl AsRef<Path>,
    records: impl IntoIterator<Item = &'a StreamRecord>,
) -> Result<(), NdjsonError> {
    let mut file = std::io::BufWriter::new(fs::File::create(path)?);
    for record in records {
        file.write_all(to_line(record).as_bytes())?;
        file.write_all(b"\n")?;
    }
    file.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Operation::write(Value(1), Time(0), Time(10))),
            StreamRecord::new(3, Operation::read(Value(1), Time(12), Time(20))),
            StreamRecord::new(
                0,
                Operation::weighted_write(Value(2), Time(14), Time(30), Weight(5)),
            ),
        ]
    }

    #[test]
    fn line_roundtrip_preserves_records() {
        for record in sample() {
            let line = to_line(&record);
            assert_eq!(parse_line(&line).unwrap(), record);
        }
    }

    #[test]
    fn key_and_weight_default_when_omitted() {
        let record =
            parse_line(r#"{"kind":"read","value":9,"start":1,"finish":4}"#).unwrap();
        assert_eq!(record.key, 0);
        assert_eq!(record.weight, Weight::UNIT);
        assert_eq!(record.op(), Operation::read(Value(9), Time(1), Time(4)));
    }

    #[test]
    fn reader_skips_blanks_and_numbers_errors() {
        let text = "\n{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":2}\n\n{ bad\n";
        let mut reader = Reader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        match err {
            NdjsonError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(reader.next().is_none());
    }

    #[test]
    fn fingerprinted_skip_matches_fingerprinted_read() {
        let text = "\n{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":2}\n{ bad\n";
        // Read everything, fingerprinting as we go.
        let mut full = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert!(full.next().unwrap().is_ok());
        assert!(full.next().unwrap().is_err());
        assert!(full.next().is_none());
        assert_eq!(full.lines_read(), 3);
        // Skipping the same three raw lines yields the same digest.
        let mut skip = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(skip.skip_raw_lines(3).unwrap(), 3);
        assert_eq!(skip.lines_read(), 3);
        assert_eq!(skip.fingerprint(), full.fingerprint());
        assert!(skip.fingerprint().is_some());
        // A diverging prefix yields a different digest.
        let other = "\n{\"kind\":\"write\",\"value\":9,\"start\":0,\"finish\":2}\n{ bad\n";
        let mut diverged = Reader::with_fingerprint(other.as_bytes(), Fingerprint::new());
        diverged.skip_raw_lines(3).unwrap();
        assert_ne!(diverged.fingerprint(), full.fingerprint());
        // Skipping past the end reports the shortfall; plain readers have
        // no fingerprint at all.
        let mut short = Reader::with_fingerprint(text.as_bytes(), Fingerprint::new());
        assert_eq!(short.skip_raw_lines(10).unwrap(), 3);
        assert_eq!(Reader::new(text.as_bytes()).fingerprint(), None);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kav_history_ndjson_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.ndjson");
        let records = sample();
        write_stream(&path, &records).unwrap();
        assert_eq!(read_stream(&path).unwrap(), records);
        fs::remove_file(path).ok();
    }

    #[test]
    fn missing_required_field_is_an_error() {
        assert!(parse_line(r#"{"kind":"write","value":1,"start":0}"#).is_err());
        assert!(parse_line("").is_err());
    }
}
