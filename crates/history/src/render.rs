//! ASCII timeline rendering of histories — the visual language of the
//! paper's figures, for terminals.
//!
//! Each operation occupies one row with a fixed label gutter; time flows
//! left to right. Writes render as `W(v) [===]`, reads as `r(v) [---]`,
//! scaled onto a fixed-width canvas.

use crate::{History, OpKind};

/// Renders `history` as an ASCII timeline of at most `width` columns
/// (minimum 20). Rows are ordered by start time.
///
/// # Examples
///
/// ```
/// use kav_history::{HistoryBuilder, render_timeline};
///
/// let h = HistoryBuilder::new()
///     .write(1, 0, 10)
///     .read(1, 12, 20)
///     .build()?;
/// let art = render_timeline(&h, 40);
/// assert!(art.contains("W(1)"));
/// assert!(art.contains("r(1)"));
/// # Ok::<(), kav_history::ValidationError>(())
/// ```
pub fn render_timeline(history: &History, width: usize) -> String {
    let width = width.max(20);
    if history.is_empty() {
        return String::from("(empty history)\n");
    }
    let max_t = history
        .ops()
        .iter()
        .map(|op| op.finish.as_u64())
        .max()
        .expect("non-empty");
    let scale = |t: u64| -> usize {
        if max_t == 0 {
            0
        } else {
            ((t as u128 * (width as u128 - 1)) / max_t as u128) as usize
        }
    };

    let gutter = history
        .ops()
        .iter()
        .map(|op| op.value.as_u64().to_string().len())
        .max()
        .unwrap_or(1)
        + 4;

    let mut out = String::new();
    for &id in history.sorted_by_start() {
        let op = history.op(id);
        let from = scale(op.start.as_u64());
        let to = scale(op.finish.as_u64()).max(from + 1);
        let label = match op.kind {
            OpKind::Write => format!("W({})", op.value.as_u64()),
            OpKind::Read => format!("r({})", op.value.as_u64()),
        };
        let fill = if op.kind == OpKind::Write { '=' } else { '-' };

        let mut row = vec![' '; width.max(to + 1)];
        row[from] = '[';
        row[to] = ']';
        for cell in row.iter_mut().take(to).skip(from + 1) {
            *cell = fill;
        }
        out.push_str(&format!("{label:<gutter$}"));
        out.push_str(row.into_iter().collect::<String>().trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn renders_each_op_on_its_own_row() {
        let h = HistoryBuilder::new()
            .write(1, 0, 50)
            .write(2, 20, 80)
            .read(1, 60, 100)
            .build()
            .unwrap();
        let art = render_timeline(&h, 60);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("W(1)"));
        assert!(art.contains("W(2)"));
        assert!(art.contains("r(1)"));
        // Rows are start-ordered: W(1) first.
        assert!(art.lines().next().unwrap().contains("W(1)"));
    }

    #[test]
    fn empty_history_renders_placeholder() {
        let h = HistoryBuilder::new().build().unwrap();
        assert_eq!(render_timeline(&h, 40), "(empty history)\n");
    }

    #[test]
    fn narrow_width_is_clamped() {
        let h = HistoryBuilder::new().write(1, 0, 5).build().unwrap();
        let art = render_timeline(&h, 1);
        assert!(art.lines().next().unwrap().len() >= 2);
    }

    #[test]
    fn brackets_delimit_every_interval() {
        let h = HistoryBuilder::new().write(1, 0, 10).read(1, 12, 24).build().unwrap();
        for line in render_timeline(&h, 50).lines() {
            assert!(line.contains('['), "missing opening bracket: {line:?}");
            assert!(line.ends_with(']'), "missing closing bracket: {line:?}");
        }
    }
}
