//! Incremental history construction for the streaming verification path.
//!
//! Offline verification consumes a complete [`crate::History`]; the
//! streaming pipeline instead observes operations one at a time, in
//! **completion order** (strictly increasing `finish` — the order a
//! store's audit log naturally emits them). [`StreamBuilder`] accepts that
//! stream for a single register, validates it incrementally, and carves it
//! into *sealed segments* at cut points where verification provably
//! decomposes.
//!
//! # The decomposition invariant
//!
//! Split a history delivered in completion order into a prefix `P` and a
//! suffix `S` such that no read in `S` is dictated by a write in `P`. Then
//! `P · S` is k-atomic **iff** `P` and `S` are each k-atomic:
//!
//! * no `S` operation precedes a `P` operation in real time (completion
//!   order guarantees `s.finish > p.finish > p.start`), so concatenating a
//!   witness of `P` with a witness of `S` is a valid total order;
//! * a read's separation from its dictating write only involves writes
//!   ordered between them, and with no cross-segment dictation those all
//!   lie in the read's own segment;
//! * conversely, restricting a witness of `P · S` to either segment keeps
//!   it valid and never increases any read's separation.
//!
//! [`StreamBuilder::try_seal`] finds such cut points among the buffered
//! operations (reads and their dictating writes are kept in the same
//! segment), so the *operation buffer* stays bounded by the window width
//! rather than the history length whenever the workload's dictation spans
//! fit the window.
//!
//! # The retirement horizon
//!
//! Duplicate-value and breach detection need to recognise the values of
//! *sealed-away* writes. Retaining one value id per sealed write forever
//! would grow linearly with stream length, so the builder instead keeps a
//! **retirement horizon** ([`StreamConfig::horizon`]): only the values of
//! the most recent `horizon` sealed writes are retained. The metadata is
//! then bounded by `horizon`, independent of stream length
//! ([`StreamBuilder::peak_retired`] records the high-water mark).
//!
//! The price is ambiguity beyond the horizon. A read whose value matches
//! a *retained* retiree is a certain breach ([`Push::BeyondHorizon`]). A
//! read whose value is unknown is, while no retiree has been forgotten
//! yet, certainly waiting for a future write and is buffered as pending;
//! once retirees *have* been forgotten it might instead be dictated by a
//! forgotten write, so it is conservatively classified as
//! [`Push::BeyondHorizon`] too. Likewise a write duplicating a forgotten
//! value is accepted — duplicate-write detection beyond the horizon is
//! explicitly **best-effort** (the §II model forbids duplicate values, so
//! this only affects input that already breaks the model).
//!
//! Verdict semantics are unchanged in one direction and degrade gracefully
//! in the other, at **any** horizon (including 0):
//!
//! * **NO stays sound.** The horizon only ever *excludes reads* from
//!   segments (breach-classified reads are dropped). Removing reads from a
//!   history never turns a non-k-atomic remainder k-atomic — restricting a
//!   witness of the full history to the remaining operations keeps it
//!   valid and never increases a read's separation — so a violation found
//!   in any sealed segment is a violation of the full history.
//! * **YES weakens to "not certifiable".** Every conservative
//!   classification increments the breach count, and callers certify YES
//!   only on breach-free streams; a horizon too small for the workload
//!   yields `UNKNOWN`, never a wrong `YES`.
//!
//! A read whose dictating write was already sealed away ("beyond the
//! horizon") is reported as [`Push::BeyondHorizon`] and excluded from
//! segments: dropping a read never turns a non-k-atomic history k-atomic,
//! so violation verdicts stay sound, but a YES verdict is then only exact
//! up to those reads (callers surface the breach count).
//!
//! # Snapshots and resume
//!
//! Long audits checkpoint: [`StreamBuilder::snapshot`] captures the whole
//! builder — buffered window, watermark, retirement ring, orphan marks and
//! every accumulated counter — as a serde-serializable [`BuilderSnapshot`],
//! and [`StreamBuilder::resume`] rebuilds an equivalent builder from one.
//! Resume *validates* the snapshot (completion order, horizon bound,
//! distinct values, counter consistency) and re-derives the internal
//! read/write pairing indexes by replaying the buffered operations, so a
//! corrupted or hand-edited snapshot is rejected with a [`SnapshotError`]
//! instead of silently mis-verifying.
//!
//! The soundness argument extends across a snapshot/resume cycle:
//!
//! * **NO stays sound.** A resumed builder seals exactly the segments the
//!   uninterrupted builder would have sealed (the snapshot is a *bisimulation
//!   point*: every subsequent push observes identical state), so a violation
//!   found after resume is a violation of the full history, and a violation
//!   found before the snapshot was already reported.
//! * **YES requires an unbroken chain.** A YES is only exact if every
//!   operation of the stream passed through *some* builder in the chain —
//!   i.e. the resumed run re-feeds the stream from precisely the point the
//!   snapshot was taken. Callers that cannot verify this (e.g. resuming a
//!   non-seekable source) must degrade YES to UNKNOWN; see
//!   `kav_core::stream` for how the online adapters surface that.
//!
//! # Examples
//!
//! ```
//! use kav_history::stream::{Push, StreamBuilder};
//! use kav_history::{Operation, Time, Value};
//!
//! let mut builder = StreamBuilder::new();
//! builder.push(Operation::write(Value(1), Time(0), Time(10)))?;
//! builder.push(Operation::read(Value(1), Time(12), Time(20)))?;
//! builder.push(Operation::write(Value(2), Time(22), Time(30)))?;
//! assert_eq!(builder.resident(), 3);
//!
//! // Keep at most one op buffered: the w(1)/r(1) pair seals together.
//! let segment = builder.try_seal(1).expect("a valid cut exists");
//! assert_eq!(segment.len(), 2);
//! assert_eq!(builder.resident(), 1);
//! # Ok::<(), kav_history::stream::StreamError>(())
//! ```

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::{OpKind, Operation, RawHistory, Time, Value, Weight};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Buckets of the arrival-order staleness-depth histogram: bucket 0 holds
/// depth 0 (fresh reads), bucket `i >= 1` holds depths in
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything deeper.
pub const DEPTH_BUCKETS: usize = 16;

/// The histogram bucket a staleness depth falls into.
fn depth_bucket(depth: u64) -> usize {
    if depth == 0 {
        0
    } else {
        ((64 - depth.leading_zeros()) as usize).min(DEPTH_BUCKETS - 1)
    }
}

/// Outcome of accepting one operation into a [`StreamBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Push {
    /// The operation was buffered and will be part of a future segment.
    Buffered,
    /// A read whose dictating write was already sealed into an earlier
    /// segment — or, once retirees older than the
    /// [horizon](StreamConfig::horizon) have been forgotten, a read whose
    /// value is unknown and therefore *might* be (conservative
    /// classification). The read is **not** buffered; the caller should
    /// count it — it marks staleness deeper than the retirement horizon.
    BeyondHorizon,
}

/// Tuning knobs for a [`StreamBuilder`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamConfig {
    /// Retirement horizon: how many of the most recently sealed writes
    /// keep their value ids retained for duplicate-write and breach
    /// detection. `None` retains every retired value forever (exact
    /// detection, memory grows with the write count — the pre-horizon
    /// behaviour); `Some(h)` bounds the metadata by `h` value ids at the
    /// cost of conservative [`Push::BeyondHorizon`] classification and
    /// best-effort duplicate detection once older retirees are forgotten.
    /// Verdict soundness does not depend on the choice (see the module
    /// docs); pick a comfortable multiple of the window — online adapters
    /// default to 16 windows.
    pub horizon: Option<usize>,
}

/// A record the stream cannot accept. The builder's state is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The operation's finish is not strictly beyond the watermark —
    /// completion-order delivery is violated.
    OutOfOrder {
        /// The offending operation.
        op: Operation,
        /// Largest finish time accepted so far.
        watermark: Time,
    },
    /// `finish <= start`: not a proper interval.
    EmptyInterval {
        /// The offending operation.
        op: Operation,
    },
    /// A write of a value already written earlier in the stream (the §II
    /// model requires distinct write values).
    DuplicateWriteValue {
        /// The duplicated value.
        value: Value,
    },
    /// An operation with weight zero (weights must be positive).
    ZeroWeight {
        /// The offending operation.
        op: Operation,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::OutOfOrder { op, watermark } => write!(
                f,
                "operation {op} arrived out of completion order (watermark {watermark})"
            ),
            StreamError::EmptyInterval { op } => {
                write!(f, "operation {op} has an empty interval")
            }
            StreamError::DuplicateWriteValue { value } => {
                write!(f, "value {value} was already written earlier in the stream")
            }
            StreamError::ZeroWeight { op } => {
                write!(f, "operation {op} has zero weight")
            }
        }
    }
}

impl Error for StreamError {}

/// A checkpoint snapshot that cannot be resumed: it is internally
/// inconsistent (corrupted, truncated, hand-edited) or does not match the
/// configuration it is being resumed under. Resume never "repairs" such a
/// snapshot — verdicts derived from guessed state would be unsound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    /// An error carrying a preformatted message.
    pub fn new(message: impl Into<String>) -> Self {
        SnapshotError(message.into())
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot resume snapshot: {}", self.0)
    }
}

impl Error for SnapshotError {}

/// Serializable state of a [`StreamBuilder`], produced by
/// [`StreamBuilder::snapshot`] and consumed by [`StreamBuilder::resume`].
///
/// Only the irreducible state is stored: the buffered operations, the
/// retirement ring and the accumulated counters. The derived pairing
/// indexes (buffered-write map, pending reads, read/write pairs) are
/// rebuilt — and thereby cross-checked — by replaying the buffer on
/// resume. Snapshots are deterministic: the same builder state always
/// serializes to the same JSON, so checkpoint files can be compared.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BuilderSnapshot {
    /// Retirement horizon the builder was configured with.
    pub horizon: Option<usize>,
    /// Sequence number of the first buffered operation.
    pub base: u64,
    /// Largest finish time accepted, if any.
    pub watermark: Option<Time>,
    /// Buffered operations in arrival order.
    pub buffer: Vec<Operation>,
    /// Values of the retained retired writes, oldest first.
    pub retired_recent: Vec<Value>,
    /// Writes ever retired, including forgotten ones.
    pub retired_total: u64,
    /// High-water mark of the retirement ring.
    pub peak_retired: usize,
    /// Sequence numbers of buffered reads expired as orphans, ascending.
    pub orphaned: Vec<u64>,
    /// Total reads expired as orphans.
    pub orphaned_reads: u64,
    /// Total writes accepted.
    pub writes_accepted: u64,
    /// Total reads accepted (including horizon breaches).
    pub reads_accepted: u64,
    /// Sum of arrival-order staleness depths.
    pub depth_sum: u64,
    /// Maximum arrival-order staleness depth.
    pub max_depth: u64,
    /// Reads contributing to the depth statistics.
    pub depth_count_reads: u64,
    /// Depth histogram ([`DEPTH_BUCKETS`] buckets).
    pub depth_hist: Vec<u64>,
    /// Segments sealed so far.
    pub segments_sealed: usize,
    /// High-water mark of the operation buffer.
    pub peak_resident: usize,
}

/// Struct-of-arrays storage for the buffered window: one dense column per
/// operation field plus a `head` offset, so the seal-scan and the drain
/// sweep run over contiguous arrays instead of a `VecDeque<Operation>`.
/// Draining a sealed prefix advances `head`; the columns compact (one
/// memmove) only once the drained prefix dominates, keeping per-op cost
/// amortised O(1) without a ring buffer's split-slice indexing.
#[derive(Clone, Debug, Default)]
struct OpColumns {
    kinds: Vec<OpKind>,
    values: Vec<Value>,
    starts: Vec<Time>,
    finishes: Vec<Time>,
    weights: Vec<Weight>,
    clients: Vec<u64>,
    /// Rows before `head` are drained; row `i` of the window is `head + i`.
    head: usize,
}

impl OpColumns {
    fn len(&self) -> usize {
        self.kinds.len() - self.head
    }

    fn push(&mut self, op: Operation) {
        self.kinds.push(op.kind);
        self.values.push(op.value);
        self.starts.push(op.start);
        self.finishes.push(op.finish);
        self.weights.push(op.weight);
        self.clients.push(op.client);
    }

    /// Reassembles row `i` (window-relative) into an [`Operation`].
    fn get(&self, i: usize) -> Operation {
        let j = self.head + i;
        Operation {
            kind: self.kinds[j],
            value: self.values[j],
            start: self.starts[j],
            finish: self.finishes[j],
            weight: self.weights[j],
            client: self.clients[j],
        }
    }

    /// Drops the first `count` rows of the window.
    fn advance(&mut self, count: usize) {
        self.head += count;
        if self.head >= self.kinds.len() - self.head {
            // The drained prefix is at least half the storage: compact.
            self.kinds.drain(..self.head);
            self.values.drain(..self.head);
            self.starts.drain(..self.head);
            self.finishes.drain(..self.head);
            self.weights.drain(..self.head);
            self.clients.drain(..self.head);
            self.head = 0;
        }
    }

    fn iter(&self) -> impl Iterator<Item = Operation> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Sentinel index of the pending-reads arena (no next node / empty list).
const PENDING_NONE: u32 = u32::MAX;

/// Buffered reads still waiting for their dictating write, keyed by value.
///
/// Per-value `Vec<u64>` allocations are replaced by singly-linked lists
/// threaded through one node arena (the `lbt/arena.rs` idiom: indices,
/// not boxes; freed nodes go on an intrusive free list), so pushing and
/// resolving pending reads costs no window-lifetime heap churn.
#[derive(Clone, Debug)]
struct PendingReads {
    /// Node payloads: the read's sequence number.
    seqs: Vec<u64>,
    /// Node links; also threads the free list.
    nexts: Vec<u32>,
    /// Head of the free list, [`PENDING_NONE`] when empty.
    free: u32,
    /// value → (head, tail) of its arrival-ordered list.
    lists: FxHashMap<Value, (u32, u32)>,
}

impl Default for PendingReads {
    fn default() -> Self {
        PendingReads {
            seqs: Vec::new(),
            nexts: Vec::new(),
            free: PENDING_NONE,
            lists: FxHashMap::default(),
        }
    }
}

impl PendingReads {
    fn alloc(&mut self, seq: u64) -> u32 {
        if self.free == PENDING_NONE {
            self.seqs.push(seq);
            self.nexts.push(PENDING_NONE);
            (self.seqs.len() - 1) as u32
        } else {
            let idx = self.free;
            self.free = self.nexts[idx as usize];
            self.seqs[idx as usize] = seq;
            self.nexts[idx as usize] = PENDING_NONE;
            idx
        }
    }

    /// Appends `seq` to the list waiting on `value` (arrival order).
    fn push(&mut self, value: Value, seq: u64) {
        let idx = self.alloc(seq);
        match self.lists.get_mut(&value) {
            Some(slot) => {
                let tail = slot.1;
                slot.1 = idx;
                self.nexts[tail as usize] = idx;
            }
            None => {
                self.lists.insert(value, (idx, idx));
            }
        }
    }

    /// Removes the list waiting on `value`, invoking `f` on each seq in
    /// arrival order and freeing the nodes. Returns whether a list existed.
    fn take(&mut self, value: Value, mut f: impl FnMut(u64)) -> bool {
        let Some((mut cur, _)) = self.lists.remove(&value) else {
            return false;
        };
        while cur != PENDING_NONE {
            let i = cur as usize;
            f(self.seqs[i]);
            let next = self.nexts[i];
            self.nexts[i] = self.free;
            self.free = cur;
            cur = next;
        }
        true
    }

    /// Unlinks every pending seq `< cutoff`, invoking `f` for each.
    /// Each list is arrival-ordered (ascending seqs), so the expired
    /// nodes are exactly a prefix of it.
    fn expire_below(&mut self, cutoff: u64, mut f: impl FnMut(u64)) {
        let seqs = &self.seqs;
        let nexts = &mut self.nexts;
        let free = &mut self.free;
        self.lists.retain(|_, slot| {
            let mut cur = slot.0;
            while cur != PENDING_NONE && seqs[cur as usize] < cutoff {
                f(seqs[cur as usize]);
                let next = nexts[cur as usize];
                nexts[cur as usize] = *free;
                *free = cur;
                cur = next;
            }
            slot.0 = cur;
            cur != PENDING_NONE
        });
    }

    /// Invokes `f` on every pending seq (across all values, any order).
    fn for_each(&self, mut f: impl FnMut(u64)) {
        for &(mut cur, _) in self.lists.values() {
            while cur != PENDING_NONE {
                f(self.seqs[cur as usize]);
                cur = self.nexts[cur as usize];
            }
        }
    }

    fn clear(&mut self) {
        self.lists.clear();
        self.seqs.clear();
        self.nexts.clear();
        self.free = PENDING_NONE;
    }
}

/// Incremental, windowed construction of one register's history.
///
/// Operations are [pushed](StreamBuilder::push) in completion order;
/// [`try_seal`](StreamBuilder::try_seal) extracts a prefix segment at a
/// decomposition-safe cut point, and [`flush`](StreamBuilder::flush)
/// drains whatever remains when the stream ends.
///
/// Incremental checks (rejected immediately): completion-order delivery,
/// proper intervals, positive weights, and distinct write values (exact
/// among buffered and horizon-retained writes; best-effort for values
/// forgotten past the [horizon](StreamConfig::horizon)).
/// The remaining §II model assumptions (distinct endpoints, reads not
/// preceding their dictating writes) are enforced *per segment* when the
/// caller validates a sealed segment with [`RawHistory::into_history`];
/// duplicate endpoints that land in different segments are not detected.
#[derive(Clone, Debug, Default)]
pub struct StreamBuilder {
    /// Buffered operations in arrival order, stored column-wise; row `i`
    /// of the window has sequence number `base + i`.
    buffer: OpColumns,
    /// Sequence number of the first buffered operation.
    base: u64,
    /// Largest finish time accepted (advances even for horizon breaches).
    watermark: Option<Time>,
    /// Buffered writes: value → (sequence number, writes arrived before it).
    buffered_writes: FxHashMap<Value, (u64, u64)>,
    /// Buffered reads still waiting for their dictating write.
    pending_reads: PendingReads,
    /// Read/dictating-write partnerships among buffered ops, as `(lo, hi)`
    /// sequence pairs; a cut may not separate a pair.
    pairs: Vec<(u64, u64)>,
    /// Retirement horizon (see [`StreamConfig::horizon`]).
    horizon: Option<usize>,
    /// Values of the most recent retired writes, oldest first; evicted
    /// past the horizon.
    retired_recent: VecDeque<Value>,
    /// Set view of `retired_recent` for O(1) membership. A value appears
    /// at most once in the ring: a duplicate write is rejected while its
    /// value is retained, so it can only re-enter after eviction.
    retired_set: FxHashSet<Value>,
    /// Writes ever retired, including those forgotten past the horizon.
    retired_total: u64,
    /// Largest `retired_recent` size ever reached.
    peak_retired: usize,
    /// Buffered reads declared orphans (their write outstayed the expiry
    /// horizon); skipped when their position drains.
    orphaned: FxHashSet<u64>,
    /// Total reads expired as orphans.
    orphaned_reads: u64,
    /// Total writes accepted (used for arrival-order staleness depths).
    writes_accepted: u64,
    /// Total reads accepted (including horizon breaches).
    reads_accepted: u64,
    /// Sum over reads of "writes that completed between my dictating
    /// write's arrival and mine" (breach reads excluded).
    depth_sum: u64,
    /// Maximum such depth (breach reads excluded).
    max_depth: u64,
    /// Reads whose dictating write is known (depth statistics population).
    depth_count_reads: u64,
    /// Histogram of those depths, in [`depth_bucket`] buckets.
    depth_hist: [u64; DEPTH_BUCKETS],
    segments_sealed: usize,
    peak_resident: usize,
    /// Reusable difference-array scratch for [`try_seal`](Self::try_seal),
    /// so the seal scan allocates nothing in steady state.
    seal_scratch: Vec<i64>,
}

impl StreamBuilder {
    /// Creates an empty builder with watermark at minus infinity and an
    /// unbounded retirement horizon.
    pub fn new() -> Self {
        StreamBuilder::default()
    }

    /// Creates an empty builder with the given configuration.
    pub fn with_config(config: StreamConfig) -> Self {
        StreamBuilder { horizon: config.horizon, ..StreamBuilder::default() }
    }

    /// The retirement horizon this builder was configured with.
    pub fn horizon(&self) -> Option<usize> {
        self.horizon
    }

    /// Number of operations currently buffered.
    pub fn resident(&self) -> usize {
        self.buffer.len()
    }

    /// Largest buffer size ever reached.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Retired value ids currently retained for breach and duplicate
    /// detection (at most the horizon).
    pub fn retired_resident(&self) -> usize {
        self.retired_recent.len()
    }

    /// Largest number of retired value ids ever retained at once — the
    /// metadata the horizon bounds ([`StreamConfig::horizon`]).
    pub fn peak_retired(&self) -> usize {
        self.peak_retired
    }

    /// Writes ever retired into sealed segments, including those whose
    /// value ids were since forgotten past the horizon.
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// True once at least one retiree's value id has been forgotten:
    /// unknown-value reads are then classified conservatively as
    /// [`Push::BeyondHorizon`] and duplicate-write detection is
    /// best-effort.
    pub fn horizon_exceeded(&self) -> bool {
        self.retired_total > self.retired_recent.len() as u64
    }

    /// Number of segments sealed so far (excluding [`flush`](Self::flush)).
    pub fn segments_sealed(&self) -> usize {
        self.segments_sealed
    }

    /// Largest finish time accepted so far, if any.
    pub fn watermark(&self) -> Option<Time> {
        self.watermark
    }

    /// Total reads accepted, including horizon breaches.
    pub fn reads_accepted(&self) -> u64 {
        self.reads_accepted
    }

    /// Reads expired as orphans: their dictating write never arrived
    /// within the expiry horizon, so they were evicted (and excluded from
    /// segments) to keep the buffer bounded. Like horizon breaches, a
    /// non-zero count means a YES verdict cannot be certified.
    pub fn orphaned_reads(&self) -> u64 {
        self.orphaned_reads
    }

    /// Mean arrival-order staleness depth over reads with a known dictating
    /// write: how many writes completed between the dictating write's
    /// arrival and the read's. Horizon-breach reads and reads still waiting
    /// for their write are excluded.
    pub fn mean_read_depth(&self) -> f64 {
        if self.depth_count_reads == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_count_reads as f64
        }
    }

    /// Maximum arrival-order staleness depth (same population as
    /// [`mean_read_depth`](Self::mean_read_depth)).
    pub fn max_read_depth(&self) -> u64 {
        self.max_depth
    }

    /// Histogram of arrival-order staleness depths over the
    /// [`mean_read_depth`](Self::mean_read_depth) population: bucket 0 is
    /// depth 0, bucket `i >= 1` covers `[2^(i-1), 2^i)`, the last bucket
    /// absorbs deeper reads ([`DEPTH_BUCKETS`] buckets).
    pub fn depth_histogram(&self) -> [u64; DEPTH_BUCKETS] {
        self.depth_hist
    }

    /// Accepts one operation.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] (leaving all state unchanged) when the
    /// operation violates an incrementally-checkable model assumption.
    pub fn push(&mut self, op: Operation) -> Result<Push, StreamError> {
        if op.finish <= op.start {
            return Err(StreamError::EmptyInterval { op });
        }
        if op.weight.as_u32() == 0 {
            return Err(StreamError::ZeroWeight { op });
        }
        if let Some(watermark) = self.watermark {
            if op.finish <= watermark {
                return Err(StreamError::OutOfOrder { op, watermark });
            }
        }
        if op.is_write()
            && (self.buffered_writes.contains_key(&op.value)
                || self.retired_set.contains(&op.value))
        {
            // Best-effort past the horizon: a duplicate of a *forgotten*
            // retiree is not caught here (such input already violates the
            // §II distinct-values assumption).
            return Err(StreamError::DuplicateWriteValue { value: op.value });
        }
        // Every error path is above; the watermark advances exactly once
        // per accepted operation, horizon-breach reads included.
        self.watermark = Some(op.finish);
        let seq = self.base + self.buffer.len() as u64;
        if op.is_write() {
            self.buffered_writes.insert(op.value, (seq, self.writes_accepted));
            self.writes_accepted += 1;
            // Reads that arrived before their dictating write resolve now
            // with arrival-order depth 0 (no write completed in between
            // that postdates the dictating write).
            let pairs = &mut self.pairs;
            let depth_count_reads = &mut self.depth_count_reads;
            let depth_hist = &mut self.depth_hist;
            self.pending_reads.take(op.value, |read_seq| {
                pairs.push((read_seq, seq));
                *depth_count_reads += 1;
                depth_hist[0] += 1;
            });
        } else {
            self.reads_accepted += 1;
            if let Some(&(write_seq, writes_before)) = self.buffered_writes.get(&op.value) {
                let depth = self.writes_accepted - writes_before - 1;
                self.depth_sum += depth;
                self.max_depth = self.max_depth.max(depth);
                self.depth_count_reads += 1;
                self.depth_hist[depth_bucket(depth)] += 1;
                self.pairs.push((write_seq, seq));
            } else if self.retired_set.contains(&op.value) {
                return Ok(Push::BeyondHorizon);
            } else if self.horizon_exceeded() {
                // The value is unknown, but retirees have been forgotten:
                // the dictating write may lie beyond the horizon, so the
                // read is conservatively a breach rather than a pending
                // read (see the module docs — NO stays sound, YES degrades
                // to "not certifiable").
                return Ok(Push::BeyondHorizon);
            } else {
                self.pending_reads.push(op.value, seq);
            }
        }
        self.buffer.push(op);
        self.peak_resident = self.peak_resident.max(self.buffer.len());
        Ok(Push::Buffered)
    }

    /// Seals and returns a prefix of the buffer at a decomposition-safe cut
    /// point, aiming to leave at most `max_resident` operations buffered.
    ///
    /// A cut is valid when it separates no read from its dictating write
    /// (buffered or still unarrived). Among valid cuts the builder picks
    /// the **smallest** one that reaches the target — retiring as little as
    /// possible minimises the risk of future horizon breaches — falling
    /// back to the largest valid cut when none reaches it. Returns `None`
    /// when the buffer is already within the target or only the empty cut
    /// is valid.
    ///
    /// A read still waiting for its dictating write blocks every cut past
    /// it, but only for four windows (`4 * max_resident`) of arrivals: a
    /// write lost upstream must not grow the buffer for the rest of the
    /// stream, so older pending reads expire as
    /// [orphans](Self::orphaned_reads) and are excluded from segments.
    pub fn try_seal(&mut self, max_resident: usize) -> Option<RawHistory> {
        let len = self.buffer.len();
        if len <= max_resident {
            return None;
        }

        // Expire orphan candidates: a pending read would otherwise block
        // every future cut, growing the buffer for the rest of the stream.
        // A read whose write has not arrived within four windows of ops is
        // declared an orphan — evicted from the cut constraints, excluded
        // from segments when its position drains, and counted (so the
        // final verdict degrades to "not certifiable", never to a wrong
        // YES; dropping a read cannot hide a violation among the rest).
        let expiry = 4 * max_resident.max(1);
        if len > expiry {
            let cutoff = self.base + (len - expiry) as u64;
            let orphaned = &mut self.orphaned;
            let orphaned_reads = &mut self.orphaned_reads;
            self.pending_reads.expire_below(cutoff, |seq| {
                orphaned.insert(seq);
                *orphaned_reads += 1;
            });
        }

        // Mark cut positions blocked by a read/write pair or a pending
        // read: a pair (lo, hi) blocks every cut c with lo < c <= hi
        // (relative to `base`), a pending read at r blocks every c > r.
        // Pairs never straddle a past cut (that is what makes cuts valid),
        // and sealing prunes the ones it retires, so every pair is in range.
        debug_assert!(self.pairs.iter().all(|&(lo, _)| lo >= self.base));
        self.seal_scratch.clear();
        self.seal_scratch.resize(len + 2, 0);
        let diff = &mut self.seal_scratch;
        for &(lo, hi) in &self.pairs {
            let lo = (lo - self.base) as usize;
            let hi = (hi - self.base) as usize;
            diff[lo + 1] += 1;
            diff[hi + 1] -= 1;
        }
        let base = self.base;
        self.pending_reads.for_each(|r| {
            let r = (r - base) as usize;
            diff[r + 1] += 1;
            diff[len + 1] -= 1;
        });

        let target = len - max_resident;
        let mut best: Option<usize> = None;
        let mut blocked = 0i64;
        for (c, delta) in diff.iter().enumerate().take(len + 1).skip(1) {
            blocked += delta;
            if blocked != 0 {
                continue;
            }
            if c >= target {
                best = Some(c);
                break; // smallest cut reaching the target
            }
            best = Some(c); // largest valid cut below the target so far
        }
        let cut = best?;

        let sealed = self.drain_prefix(cut);
        self.pairs.retain(|&(lo, _)| lo >= self.base);
        self.segments_sealed += 1;
        Some(sealed)
    }

    /// Drains the first `count` buffered ops: orphan positions are
    /// skipped, drained writes retire their values (evicting retirees past
    /// the horizon), `base` advances.
    fn drain_prefix(&mut self, count: usize) -> RawHistory {
        let mut sealed = RawHistory::new();
        sealed.ops.reserve(count);
        let base = self.base;
        for i in 0..count {
            let op = self.buffer.get(i);
            if self.orphaned.remove(&(base + i as u64)) {
                continue; // expired orphan read: counted, not sealed
            }
            if op.is_write() {
                self.buffered_writes.remove(&op.value);
                self.retired_total += 1;
                if self.horizon != Some(0) {
                    self.retired_recent.push_back(op.value);
                    self.retired_set.insert(op.value);
                }
            }
            sealed.ops.push(op);
        }
        self.buffer.advance(count);
        if let Some(horizon) = self.horizon {
            while self.retired_recent.len() > horizon {
                let old = self.retired_recent.pop_front().expect("len > horizon >= 0");
                self.retired_set.remove(&old);
            }
        }
        self.peak_retired = self.peak_retired.max(self.retired_recent.len());
        self.base += count as u64;
        sealed
    }

    /// Drains every buffered operation as the stream's final segment.
    ///
    /// Reads still waiting for a dictating write are included; validating
    /// the returned segment will report them as anomalies, exactly as
    /// offline validation of the full history would.
    pub fn flush(&mut self) -> RawHistory {
        let sealed = self.drain_prefix(self.buffer.len());
        self.pairs.clear();
        self.pending_reads.clear();
        sealed
    }

    /// Captures the builder's complete state as a serializable snapshot.
    ///
    /// The snapshot is a *bisimulation point*: a builder
    /// [resumed](Self::resume) from it reacts to every future push and
    /// seal exactly as this builder would, so checkpoint/resume is
    /// invisible to verdicts (see the module docs).
    ///
    /// # Examples
    ///
    /// ```
    /// use kav_history::stream::StreamBuilder;
    /// use kav_history::{Operation, Time, Value};
    ///
    /// let mut builder = StreamBuilder::new();
    /// builder.push(Operation::write(Value(1), Time(0), Time(10)))?;
    /// let snapshot = builder.snapshot();
    ///
    /// // ...process crashes; later, a new process picks up the audit...
    /// let mut resumed = StreamBuilder::resume(&snapshot).expect("snapshot is consistent");
    /// resumed.push(Operation::read(Value(1), Time(12), Time(20)))?;
    /// assert_eq!(resumed.resident(), 2);
    /// # Ok::<(), kav_history::stream::StreamError>(())
    /// ```
    pub fn snapshot(&self) -> BuilderSnapshot {
        let mut orphaned: Vec<u64> = self.orphaned.iter().copied().collect();
        orphaned.sort_unstable();
        BuilderSnapshot {
            horizon: self.horizon,
            base: self.base,
            watermark: self.watermark,
            buffer: self.buffer.iter().collect(),
            retired_recent: self.retired_recent.iter().copied().collect(),
            retired_total: self.retired_total,
            peak_retired: self.peak_retired,
            orphaned,
            orphaned_reads: self.orphaned_reads,
            writes_accepted: self.writes_accepted,
            reads_accepted: self.reads_accepted,
            depth_sum: self.depth_sum,
            max_depth: self.max_depth,
            depth_count_reads: self.depth_count_reads,
            depth_hist: self.depth_hist.to_vec(),
            segments_sealed: self.segments_sealed,
            peak_resident: self.peak_resident,
        }
    }

    /// Rebuilds a builder from a [`snapshot`](Self::snapshot).
    ///
    /// The snapshot is validated — completion order and interval sanity of
    /// the buffer, the horizon bound on the retirement ring, value
    /// distinctness across buffer and ring, orphan marks pointing at
    /// buffered reads, and counter consistency — and the derived pairing
    /// indexes are re-derived by replaying the buffered operations.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the first inconsistency; nothing
    /// about such a snapshot is trusted.
    pub fn resume(snapshot: &BuilderSnapshot) -> Result<StreamBuilder, SnapshotError> {
        let s = snapshot;
        let err = |msg: String| Err(SnapshotError::new(msg));
        if s.depth_hist.len() != DEPTH_BUCKETS {
            return err(format!(
                "depth histogram has {} buckets, expected {DEPTH_BUCKETS}",
                s.depth_hist.len()
            ));
        }
        if let Some(h) = s.horizon {
            if s.retired_recent.len() > h {
                return err(format!(
                    "{} retained retirees exceed the horizon {h}",
                    s.retired_recent.len()
                ));
            }
        }
        if s.peak_retired < s.retired_recent.len() || s.peak_resident < s.buffer.len() {
            return err("high-water marks below current occupancy".into());
        }
        if s.retired_total < s.retired_recent.len() as u64 {
            return err("more retained retirees than writes ever retired".into());
        }

        // The buffer must itself be a legal completion-order stream.
        let mut prev: Option<Time> = None;
        for op in &s.buffer {
            if op.finish <= op.start {
                return err(format!("buffered operation {op} has an empty interval"));
            }
            if op.weight.as_u32() == 0 {
                return err(format!("buffered operation {op} has zero weight"));
            }
            if let Some(p) = prev {
                if op.finish <= p {
                    return err(format!("buffered operation {op} breaks completion order"));
                }
            }
            prev = Some(op.finish);
        }
        match (prev, s.watermark) {
            (Some(last), Some(mark)) if last > mark => {
                return err("watermark behind the buffered operations".into());
            }
            (Some(_), None) => return err("non-empty buffer without a watermark".into()),
            _ => {}
        }

        let mut retired_set: FxHashSet<Value> = FxHashSet::default();
        for v in &s.retired_recent {
            if !retired_set.insert(*v) {
                return err(format!("value {v} retired twice in the retained ring"));
            }
        }

        let len = s.buffer.len() as u64;
        // All arithmetic below is on untrusted fields: prove it cannot
        // overflow once, up front, so a corrupt checkpoint is rejected
        // instead of panicking (debug) or wrapping into accepted
        // nonsense (release).
        if s.base.checked_add(len).is_none() {
            return err(format!("sequence base {} overflows past the buffer", s.base));
        }
        if s.retired_total.checked_add(len).is_none() {
            return err(format!("retired-write total {} is implausible", s.retired_total));
        }
        let mut orphaned: FxHashSet<u64> = FxHashSet::default();
        for &seq in &s.orphaned {
            if seq < s.base || seq >= s.base + len {
                return err(format!("orphan sequence {seq} outside the buffer"));
            }
            if !s.buffer[(seq - s.base) as usize].is_read() {
                return err(format!("orphan sequence {seq} marks a write"));
            }
            if !orphaned.insert(seq) {
                return err(format!("orphan sequence {seq} listed twice"));
            }
        }
        if s.orphaned_reads < orphaned.len() as u64 {
            return err("orphan total below the marked orphans".into());
        }

        // Replay the buffer to re-derive (and cross-check) the pairing
        // indexes. Counters are restored, not recomputed: they summarise
        // arrivals that predate the buffer.
        let mut buffered_writes: FxHashMap<Value, (u64, u64)> = FxHashMap::default();
        let mut pending_reads = PendingReads::default();
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut buffered_write_count = 0u64;
        let mut buffer = OpColumns::default();
        for (i, op) in s.buffer.iter().enumerate() {
            let seq = s.base + i as u64;
            if op.is_write() {
                if retired_set.contains(&op.value) {
                    return err(format!("buffered write duplicates retained value {}", op.value));
                }
                let writes_before = s.retired_total + buffered_write_count;
                if buffered_writes.insert(op.value, (seq, writes_before)).is_some() {
                    return err(format!("value {} written twice in the buffer", op.value));
                }
                buffered_write_count += 1;
                pending_reads.take(op.value, |read_seq| {
                    pairs.push((read_seq, seq));
                });
            } else if orphaned.contains(&seq) {
                // Expired orphan: excluded from the cut constraints.
            } else if let Some(&(write_seq, _)) = buffered_writes.get(&op.value) {
                pairs.push((write_seq, seq));
            } else if retired_set.contains(&op.value) {
                // Such a read would have been classified BeyondHorizon and
                // never buffered.
                return err(format!("buffered read of retired value {}", op.value));
            } else {
                pending_reads.push(op.value, seq);
            }
            buffer.push(*op);
        }
        if s.writes_accepted != s.retired_total + buffered_write_count {
            return err(format!(
                "{} writes accepted but {} retired + {} buffered",
                s.writes_accepted, s.retired_total, buffered_write_count
            ));
        }
        if s.depth_count_reads > s.reads_accepted {
            return err("depth population exceeds reads accepted".into());
        }

        let mut depth_hist = [0u64; DEPTH_BUCKETS];
        depth_hist.copy_from_slice(&s.depth_hist);
        Ok(StreamBuilder {
            buffer,
            base: s.base,
            watermark: s.watermark,
            buffered_writes,
            pending_reads,
            pairs,
            horizon: s.horizon,
            retired_recent: s.retired_recent.iter().copied().collect(),
            retired_set,
            retired_total: s.retired_total,
            peak_retired: s.peak_retired,
            orphaned,
            orphaned_reads: s.orphaned_reads,
            writes_accepted: s.writes_accepted,
            reads_accepted: s.reads_accepted,
            depth_sum: s.depth_sum,
            max_depth: s.max_depth,
            depth_count_reads: s.depth_count_reads,
            depth_hist,
            segments_sealed: s.segments_sealed,
            peak_resident: s.peak_resident,
            seal_scratch: Vec::new(),
        })
    }
}

/// Returns the operations of `raw` in completion order (by finish time),
/// the delivery order [`StreamBuilder`] expects.
///
/// # Examples
///
/// ```
/// use kav_history::stream::completion_order;
/// use kav_history::{RawHistory, Time, Value};
///
/// let mut raw = RawHistory::new();
/// raw.write(Value(1), Time(0), Time(30)); // finishes last
/// raw.write(Value(2), Time(5), Time(10)); // finishes first
/// let ordered = completion_order(&raw);
/// assert_eq!(ordered[0].value, Value(2));
/// assert_eq!(ordered[1].value, Value(1));
/// ```
pub fn completion_order(raw: &RawHistory) -> Vec<Operation> {
    let mut ops = raw.ops.clone();
    ops.sort_by_key(|op| op.finish);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(value: u64, start: u64, finish: u64) -> Operation {
        Operation::write(Value(value), Time(start), Time(finish))
    }

    fn r(value: u64, start: u64, finish: u64) -> Operation {
        Operation::read(Value(value), Time(start), Time(finish))
    }

    #[test]
    fn rejects_out_of_order_and_malformed_ops() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        let err = b.push(w(2, 3, 9)).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrder { .. }));
        assert!(matches!(
            b.push(w(3, 20, 20)).unwrap_err(),
            StreamError::EmptyInterval { .. }
        ));
        assert!(matches!(
            b.push(Operation::weighted_write(Value(3), Time(20), Time(25), crate::Weight(0)))
                .unwrap_err(),
            StreamError::ZeroWeight { .. }
        ));
        // Failed pushes left the builder untouched.
        assert_eq!(b.resident(), 1);
        assert_eq!(b.watermark(), Some(Time(10)));
    }

    #[test]
    fn rejects_duplicate_write_values_across_segments() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(1).unwrap();
        assert!(matches!(
            b.push(w(1, 22, 30)).unwrap_err(),
            StreamError::DuplicateWriteValue { value: Value(1) }
        ));
    }

    #[test]
    fn cut_never_separates_a_read_from_its_write() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.push(r(2, 22, 30)).unwrap();
        // Target resident 1: the smallest cut reaching it is after the
        // w(2)/r(2) pair, i.e. the whole buffer — w(1) alone would do but
        // leaves 2 resident; cut between w(2) and r(2) is blocked.
        let sealed = b.try_seal(1).unwrap();
        assert_eq!(sealed.len(), 3);
        assert_eq!(b.resident(), 0);
    }

    #[test]
    fn pending_read_blocks_sealing_past_it() {
        let mut b = StreamBuilder::new();
        // The read of value 2 finishes before its (overlapping) write.
        b.push(w(1, 0, 10)).unwrap();
        b.push(r(2, 12, 20)).unwrap();
        b.push(w(3, 22, 30)).unwrap();
        // Only the cut after w(1) is valid; everything later is blocked by
        // the read still waiting for its dictating write.
        let sealed = b.try_seal(0).unwrap();
        assert_eq!(sealed.len(), 1);
        assert_eq!(b.resident(), 2);
        // Its write arrives; the pair can now seal together.
        b.push(w(2, 14, 40)).unwrap();
        let sealed = b.try_seal(0).unwrap();
        assert_eq!(sealed.len(), 3);
    }

    #[test]
    fn beyond_horizon_reads_are_reported_and_dropped() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(0).unwrap();
        assert_eq!(b.push(r(1, 22, 30)).unwrap(), Push::BeyondHorizon);
        assert_eq!(b.resident(), 0);
        // The watermark still advanced, so earlier finishes stay rejected.
        assert!(matches!(
            b.push(w(3, 24, 28)).unwrap_err(),
            StreamError::OutOfOrder { .. }
        ));
    }

    #[test]
    fn breach_reads_advance_the_watermark() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(0).unwrap();
        assert_eq!(b.watermark(), Some(Time(20)));
        // The breach read is dropped, but its finish still advances the
        // watermark — exactly once, to the read's own finish.
        assert_eq!(b.push(r(1, 22, 30)).unwrap(), Push::BeyondHorizon);
        assert_eq!(b.watermark(), Some(Time(30)));
        assert!(matches!(
            b.push(w(3, 24, 28)).unwrap_err(),
            StreamError::OutOfOrder { watermark: Time(30), .. }
        ));
        // Buffered pushes advance it identically.
        b.push(w(4, 32, 40)).unwrap();
        assert_eq!(b.watermark(), Some(Time(40)));
    }

    #[test]
    fn horizon_bounds_retired_metadata() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(3) });
        assert_eq!(b.horizon(), Some(3));
        let mut t = 0;
        for v in 1..=20u64 {
            b.push(w(v, t, t + 5)).unwrap();
            t += 10;
            b.try_seal(0);
            assert!(b.retired_resident() <= 3, "ring grew to {}", b.retired_resident());
        }
        assert_eq!(b.peak_retired(), 3);
        assert_eq!(b.retired_total(), 20);
        assert!(b.horizon_exceeded());
        // The three freshest retirees are still recognised...
        assert_eq!(b.push(r(19, t, t + 5)).unwrap(), Push::BeyondHorizon);
        // ...and an unknown value is conservatively a breach, not pending.
        assert_eq!(b.push(r(999, t + 7, t + 12)).unwrap(), Push::BeyondHorizon);
        assert_eq!(b.resident(), 0);
    }

    #[test]
    fn unknown_reads_stay_pending_while_horizon_not_exceeded() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(8) });
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(0).unwrap();
        assert!(!b.horizon_exceeded());
        // Nothing has been forgotten, so an unknown value can only belong
        // to a future write: the read waits instead of breaching.
        assert_eq!(b.push(r(3, 22, 30)).unwrap(), Push::Buffered);
        b.push(w(3, 24, 40)).unwrap();
        let sealed = b.try_seal(0).unwrap();
        assert_eq!(sealed.len(), 2);
        assert!(sealed.into_history().is_ok());
    }

    #[test]
    fn duplicate_detection_is_best_effort_beyond_horizon() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(1) });
        let mut t = 0;
        for v in 1..=4u64 {
            b.push(w(v, t, t + 5)).unwrap();
            t += 10;
            b.try_seal(0);
        }
        // Value 4 is still within the horizon: exact detection.
        assert!(matches!(
            b.push(w(4, t, t + 5)).unwrap_err(),
            StreamError::DuplicateWriteValue { value: Value(4) }
        ));
        // Value 1 was forgotten: the duplicate is accepted (best-effort).
        assert_eq!(b.push(w(1, t, t + 5)).unwrap(), Push::Buffered);
    }

    #[test]
    fn zero_horizon_retains_nothing_and_stays_sound() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(0) });
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(0).unwrap();
        assert_eq!(b.retired_resident(), 0);
        assert_eq!(b.peak_retired(), 0);
        // Every unknown read is a breach (never a wrong pairing), and
        // duplicate writes pass unnoticed — documented best-effort.
        assert_eq!(b.push(r(1, 22, 30)).unwrap(), Push::BeyondHorizon);
        assert_eq!(b.push(w(1, 32, 40)).unwrap(), Push::Buffered);
    }

    #[test]
    fn sealed_segments_concatenate_to_the_original_stream() {
        let ops =
            vec![w(1, 0, 10), r(1, 12, 20), w(2, 14, 30), r(2, 32, 40), w(3, 42, 50)];
        let mut b = StreamBuilder::new();
        let mut collected = Vec::new();
        for op in &ops {
            assert_eq!(b.push(*op).unwrap(), Push::Buffered);
            if let Some(segment) = b.try_seal(2) {
                collected.extend(segment.ops);
            }
        }
        collected.extend(b.flush().ops);
        assert_eq!(collected, ops);
        assert!(b.resident() == 0);
    }

    #[test]
    fn depth_statistics_track_arrival_order_staleness() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.push(w(3, 22, 30)).unwrap();
        b.push(r(1, 32, 40)).unwrap(); // two writes completed since w(1)
        b.push(r(3, 42, 50)).unwrap(); // fresh
        assert_eq!(b.max_read_depth(), 2);
        assert!((b.mean_read_depth() - 1.0).abs() < 1e-9);
        assert_eq!(b.reads_accepted(), 2);
    }

    #[test]
    fn segments_validate_as_standalone_histories() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(r(1, 12, 20)).unwrap();
        b.push(w(2, 22, 30)).unwrap();
        b.push(r(2, 32, 40)).unwrap();
        let sealed = b.try_seal(2).unwrap();
        assert!(sealed.into_history().is_ok());
        assert!(b.flush().into_history().is_ok());
        assert_eq!(b.segments_sealed(), 1);
    }

    #[test]
    fn orphan_read_cannot_block_cuts_forever() {
        let mut b = StreamBuilder::new();
        // A read whose write was lost upstream, then a long clean tail.
        b.push(r(999, 0, 5)).unwrap();
        let mut t = 10;
        for v in 1..=40u64 {
            b.push(w(v, t, t + 5)).unwrap();
            b.push(r(v, t + 7, t + 12)).unwrap();
            t += 20;
            // Window of 4: the orphan expires after 16 resident ops and
            // sealing resumes; the buffer must stay bounded.
            b.try_seal(4);
            assert!(b.resident() <= 4 * 4 + 4, "buffer grew to {}", b.resident());
        }
        assert_eq!(b.orphaned_reads(), 1);
        // The orphan was excluded, so the remaining tail still validates.
        assert!(b.flush().into_history().is_ok());
    }

    #[test]
    fn flush_includes_unresolved_reads() {
        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(r(9, 12, 20)).unwrap(); // its write never arrives
        let last = b.flush();
        assert_eq!(last.len(), 2);
        assert!(last.into_history().is_err());
    }

    #[test]
    fn depth_histogram_buckets_by_power_of_two() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(2), 2);
        assert_eq!(depth_bucket(3), 2);
        assert_eq!(depth_bucket(4), 3);
        assert_eq!(depth_bucket(u64::MAX), DEPTH_BUCKETS - 1);

        let mut b = StreamBuilder::new();
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.push(w(3, 22, 30)).unwrap();
        b.push(r(1, 32, 40)).unwrap(); // depth 2 -> bucket 2
        b.push(r(3, 42, 50)).unwrap(); // depth 0 -> bucket 0
        let hist = b.depth_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[2], 1);
        assert_eq!(hist.iter().sum::<u64>(), 2);
    }

    #[test]
    fn pending_read_resolution_counts_as_depth_zero_in_histogram() {
        let mut b = StreamBuilder::new();
        b.push(r(5, 0, 10)).unwrap(); // waits for its write
        b.push(w(5, 2, 20)).unwrap(); // resolves it at depth 0
        assert_eq!(b.depth_histogram()[0], 1);
    }

    /// Pushes `ops` through builder `b`, sealing with `target` after each
    /// push, and returns everything sealed plus every push outcome.
    fn drive(
        b: &mut StreamBuilder,
        ops: &[Operation],
        target: usize,
    ) -> (Vec<Operation>, Vec<Push>) {
        let mut sealed = Vec::new();
        let mut outcomes = Vec::new();
        for op in ops {
            outcomes.push(b.push(*op).unwrap());
            if let Some(segment) = b.try_seal(target) {
                sealed.extend(segment.ops);
            }
        }
        (sealed, outcomes)
    }

    #[test]
    fn resumed_builder_bisimulates_the_uninterrupted_one() {
        // A workload exercising pairs, pending reads, retirement and
        // breaches, split at every possible point: the resumed builder
        // must seal identical segments and report identical statistics.
        let mut ops = Vec::new();
        let mut t = 0;
        for v in 1..=12u64 {
            ops.push(w(v, t, t + 5));
            if v % 2 == 0 {
                ops.push(r(v - 1, t + 6, t + 9)); // one write stale
            }
            t += 10;
        }
        ops.push(r(1, t, t + 5)); // deep read: breaches at small horizons
        let config = StreamConfig { horizon: Some(4) };

        for cut in 0..=ops.len() {
            let mut uninterrupted = StreamBuilder::with_config(config);
            let (sealed_a, outcomes_a) = drive(&mut uninterrupted, &ops, 2);

            let mut first = StreamBuilder::with_config(config);
            let (mut sealed_b, mut outcomes_b) = drive(&mut first, &ops[..cut], 2);
            let snapshot = first.snapshot();
            drop(first); // the "crash"
            let mut resumed = StreamBuilder::resume(&snapshot).expect("snapshot resumes");
            let (tail_sealed, tail_outcomes) = drive(&mut resumed, &ops[cut..], 2);
            sealed_b.extend(tail_sealed);
            outcomes_b.extend(tail_outcomes);

            assert_eq!(outcomes_a, outcomes_b, "cut {cut}");
            assert_eq!(sealed_a, sealed_b, "cut {cut}");
            assert_eq!(uninterrupted.flush().ops, resumed.flush().ops, "cut {cut}");
            assert_eq!(uninterrupted.retired_total(), resumed.retired_total());
            assert_eq!(uninterrupted.peak_retired(), resumed.peak_retired());
            assert_eq!(uninterrupted.reads_accepted(), resumed.reads_accepted());
            assert_eq!(uninterrupted.orphaned_reads(), resumed.orphaned_reads());
            assert_eq!(uninterrupted.max_read_depth(), resumed.max_read_depth());
            assert_eq!(uninterrupted.depth_histogram(), resumed.depth_histogram());
            assert_eq!(uninterrupted.watermark(), resumed.watermark());
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(3) });
        b.push(w(1, 0, 10)).unwrap();
        b.push(r(1, 12, 20)).unwrap();
        b.push(w(2, 14, 30)).unwrap();
        b.try_seal(1);
        let snapshot = b.snapshot();
        let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let back: BuilderSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(back, snapshot);
        // Determinism: identical state, identical bytes.
        assert_eq!(json, serde_json::to_string(&b.snapshot()).unwrap());
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let mut b = StreamBuilder::with_config(StreamConfig { horizon: Some(2) });
        b.push(w(1, 0, 10)).unwrap();
        b.push(w(2, 12, 20)).unwrap();
        b.try_seal(0);
        b.push(r(3, 22, 30)).unwrap();
        b.push(w(4, 32, 40)).unwrap();
        let good = b.snapshot();
        assert!(StreamBuilder::resume(&good).is_ok());

        let tamper = |mutate: &dyn Fn(&mut BuilderSnapshot)| {
            let mut bad = good.clone();
            mutate(&mut bad);
            StreamBuilder::resume(&bad).expect_err("tampered snapshot must be rejected")
        };
        tamper(&|s| s.retired_recent.push(Value(9))); // ring outgrows the horizon
        tamper(&|s| s.writes_accepted += 1);
        tamper(&|s| s.buffer.reverse());
        tamper(&|s| s.watermark = None);
        tamper(&|s| {
            s.depth_hist.pop();
        });
        tamper(&|s| s.orphaned.push(999));
        tamper(&|s| s.peak_resident = 0);
        // Adversarial numeric fields must reject, never overflow.
        tamper(&|s| s.base = u64::MAX);
        tamper(&|s| s.retired_total = u64::MAX);
        let err = tamper(&|s| s.buffer[0] = w(2, 21, 29));
        assert!(err.to_string().contains("cannot resume"), "{err}");
    }

    #[test]
    fn completion_order_sorts_by_finish() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(50));
        raw.read(Value(1), Time(5), Time(9));
        raw.write(Value(2), Time(2), Time(30));
        let ordered = completion_order(&raw);
        let finishes: Vec<Time> = ordered.iter().map(|op| op.finish).collect();
        assert_eq!(finishes, vec![Time(9), Time(30), Time(50)]);
    }
}
