//! A static interval tree over zones (centered / augmented-median form).
//!
//! FZF's Stage 1 (§IV-C) keeps zones "in an interval tree sorted by the low
//! zone endpoint". The chunk computation itself only needs a sorted sweep,
//! but stabbing and overlap queries are useful throughout the workbench
//! (zone inspection, chunk attribution, the CLI's `stats`/`render`), so the
//! tree is provided as a first-class structure: build once in
//! `O(n log n)`, query in `O(log n + hits)`.

use crate::Time;

/// An interval with an opaque payload (e.g. a cluster id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeInterval<T> {
    /// Inclusive lower endpoint.
    pub low: Time,
    /// Inclusive upper endpoint.
    pub high: Time,
    /// Caller's payload.
    pub data: T,
}

/// A node of the centered interval tree.
#[derive(Clone, Debug)]
struct Node<T> {
    center: Time,
    /// Intervals containing `center`, sorted by low ascending.
    by_low: Vec<TreeInterval<T>>,
    /// The same intervals, sorted by high descending.
    by_high: Vec<TreeInterval<T>>,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

/// A static interval tree: build once, query many times.
///
/// # Examples
///
/// ```
/// use kav_history::{IntervalTree, Time, TreeInterval};
///
/// let tree = IntervalTree::build(vec![
///     TreeInterval { low: Time(0), high: Time(10), data: "a" },
///     TreeInterval { low: Time(5), high: Time(15), data: "b" },
///     TreeInterval { low: Time(20), high: Time(30), data: "c" },
/// ]);
/// let mut hit: Vec<&str> = tree.stab(Time(7)).map(|i| i.data).collect();
/// hit.sort_unstable();
/// assert_eq!(hit, vec!["a", "b"]);
/// assert_eq!(tree.overlapping(Time(12), Time(22)).count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct IntervalTree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

impl<T: Clone> IntervalTree<T> {
    /// Builds a tree from intervals (any order). Intervals with
    /// `low > high` are rejected by panic — construct them the right way
    /// around.
    ///
    /// # Panics
    ///
    /// Panics if any interval has `low > high`.
    pub fn build(intervals: Vec<TreeInterval<T>>) -> Self {
        for i in &intervals {
            assert!(i.low <= i.high, "interval tree: low must not exceed high");
        }
        let len = intervals.len();
        IntervalTree { root: Self::build_node(intervals), len }
    }

    fn build_node(mut intervals: Vec<TreeInterval<T>>) -> Option<Box<Node<T>>> {
        if intervals.is_empty() {
            return None;
        }
        // Median endpoint as the center.
        let mut endpoints: Vec<Time> = intervals
            .iter()
            .flat_map(|i| [i.low, i.high])
            .collect();
        endpoints.sort_unstable();
        let center = endpoints[endpoints.len() / 2];

        let mut here = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for interval in intervals.drain(..) {
            if interval.high < center {
                left.push(interval);
            } else if interval.low > center {
                right.push(interval);
            } else {
                here.push(interval);
            }
        }
        let mut by_low = here.clone();
        by_low.sort_by_key(|i| i.low);
        let mut by_high = here;
        by_high.sort_by_key(|i| std::cmp::Reverse(i.high));
        Some(Box::new(Node {
            center,
            by_low,
            by_high,
            left: Self::build_node(left),
            right: Self::build_node(right),
        }))
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree stores no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All intervals containing the point `at` (closed endpoints).
    pub fn stab(&self, at: Time) -> impl Iterator<Item = &TreeInterval<T>> {
        let mut out = Vec::new();
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if at < n.center {
                // Intervals here contain center >= at; they match iff their
                // low <= at — take the by_low prefix.
                for i in &n.by_low {
                    if i.low <= at {
                        out.push(i);
                    } else {
                        break;
                    }
                }
                node = n.left.as_deref();
            } else if at > n.center {
                for i in &n.by_high {
                    if i.high >= at {
                        out.push(i);
                    } else {
                        break;
                    }
                }
                node = n.right.as_deref();
            } else {
                out.extend(n.by_low.iter());
                break;
            }
        }
        out.into_iter()
    }

    /// All intervals intersecting the closed query interval `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn overlapping(&self, low: Time, high: Time) -> impl Iterator<Item = &TreeInterval<T>> {
        assert!(low <= high, "query interval reversed");
        let mut out = Vec::new();
        Self::collect_overlaps(self.root.as_deref(), low, high, &mut out);
        out.into_iter()
    }

    fn collect_overlaps<'a>(
        node: Option<&'a Node<T>>,
        low: Time,
        high: Time,
        out: &mut Vec<&'a TreeInterval<T>>,
    ) {
        let Some(n) = node else { return };
        // Intervals stored here all contain n.center.
        if high < n.center {
            // Query entirely left of center: stored intervals match iff
            // their low <= high.
            for i in &n.by_low {
                if i.low <= high {
                    out.push(i);
                } else {
                    break;
                }
            }
            Self::collect_overlaps(n.left.as_deref(), low, high, out);
        } else if low > n.center {
            for i in &n.by_high {
                if i.high >= low {
                    out.push(i);
                } else {
                    break;
                }
            }
            Self::collect_overlaps(n.right.as_deref(), low, high, out);
        } else {
            // Query straddles the center: every stored interval overlaps.
            out.extend(n.by_low.iter());
            Self::collect_overlaps(n.left.as_deref(), low, high, out);
            Self::collect_overlaps(n.right.as_deref(), low, high, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(low: u64, high: u64, data: usize) -> TreeInterval<usize> {
        TreeInterval { low: Time(low), high: Time(high), data }
    }

    /// Brute-force reference for the tree queries.
    fn naive_stab(ivs: &[TreeInterval<usize>], at: Time) -> Vec<usize> {
        let mut v: Vec<usize> = ivs
            .iter()
            .filter(|i| i.low <= at && at <= i.high)
            .map(|i| i.data)
            .collect();
        v.sort_unstable();
        v
    }

    fn naive_overlap(ivs: &[TreeInterval<usize>], low: Time, high: Time) -> Vec<usize> {
        let mut v: Vec<usize> = ivs
            .iter()
            .filter(|i| i.low <= high && low <= i.high)
            .map(|i| i.data)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let tree: IntervalTree<usize> = IntervalTree::build(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.stab(Time(5)).count(), 0);
        assert_eq!(tree.overlapping(Time(0), Time(10)).count(), 0);
    }

    #[test]
    fn small_fixed_cases() {
        let ivs = vec![iv(0, 10, 0), iv(5, 15, 1), iv(20, 30, 2), iv(8, 9, 3)];
        let tree = IntervalTree::build(ivs.clone());
        assert_eq!(tree.len(), 4);
        for at in [0u64, 5, 8, 9, 10, 12, 19, 20, 30, 31] {
            let mut got: Vec<usize> = tree.stab(Time(at)).map(|i| i.data).collect();
            got.sort_unstable();
            assert_eq!(got, naive_stab(&ivs, Time(at)), "stab {at}");
        }
        for (lo, hi) in [(0u64, 4), (9, 21), (16, 19), (0, 100), (30, 30)] {
            let mut got: Vec<usize> =
                tree.overlapping(Time(lo), Time(hi)).map(|i| i.data).collect();
            got.sort_unstable();
            assert_eq!(got, naive_overlap(&ivs, Time(lo), Time(hi)), "overlap {lo}..{hi}");
        }
    }

    #[test]
    fn randomized_against_naive() {
        // Deterministic pseudo-random intervals (LCG) — no rng dependency.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..30 {
            let n = (next() % 40) as usize;
            let ivs: Vec<TreeInterval<usize>> = (0..n)
                .map(|d| {
                    let low = next() % 1000;
                    let len = next() % 200;
                    iv(low, low + len, d)
                })
                .collect();
            let tree = IntervalTree::build(ivs.clone());
            for _ in 0..50 {
                let at = Time(next() % 1300);
                let mut got: Vec<usize> = tree.stab(at).map(|i| i.data).collect();
                got.sort_unstable();
                assert_eq!(got, naive_stab(&ivs, at), "round {round}");

                let lo = next() % 1200;
                let hi = lo + next() % 300;
                let mut got: Vec<usize> = tree
                    .overlapping(Time(lo), Time(hi))
                    .map(|i| i.data)
                    .collect();
                got.sort_unstable();
                assert_eq!(got, naive_overlap(&ivs, Time(lo), Time(hi)), "round {round}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "low must not exceed high")]
    fn rejects_reversed_intervals() {
        IntervalTree::build(vec![iv(10, 5, 0)]);
    }
}
