//! Operation histories for k-atomicity verification.
//!
//! This crate is the data-model substrate of the `k-atomicity` workspace,
//! which reproduces *On the k-Atomicity-Verification Problem* (Golab,
//! Hurwitz & Li, ICDCS 2013). It provides:
//!
//! * the operation/history model of the paper's §II — [`Operation`],
//!   [`RawHistory`], and the validated, indexed [`History`];
//! * anomaly detection and the write-shortening normalisation (§II-C);
//! * the Gibbons–Korach *cluster*/*zone* machinery and FZF's Stage-1
//!   *chunk* decomposition (§IV) — [`clusters`], [`zones`], [`chunk_set`];
//! * a JSON on-disk format ([`json`]) and summary statistics
//!   ([`HistoryStats`]);
//! * the streaming substrate — incremental, windowed history construction
//!   ([`stream::StreamBuilder`]) and an NDJSON operation codec ([`ndjson`])
//!   for unbounded completion-order op streams.
//!
//! # Quick start
//!
//! ```
//! use kav_history::{HistoryBuilder, HistoryStats};
//!
//! // w(1) then w(2), then a stale read of 1 — fine for 2-atomicity.
//! let history = HistoryBuilder::new()
//!     .write(1, 0, 10)
//!     .write(2, 12, 20)
//!     .read(1, 22, 30)
//!     .build()?;
//!
//! let stats = HistoryStats::of(&history);
//! assert_eq!(stats.writes, 2);
//! assert_eq!(stats.forward_clusters, 1);
//! # Ok::<(), kav_history::ValidationError>(())
//! ```
//!
//! The verification algorithms themselves live in the `kav-core` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anomaly;
mod builder;
mod chunk;
mod cluster;
pub mod csv;
pub mod frame;
pub mod fxhash;
mod history;
mod interval_tree;
pub mod json;
pub mod ndjson;
mod normalize;
mod op;
mod raw;
mod render;
mod repair;
mod stats;
pub mod stream;
mod time;
pub mod transform;
mod zone;

pub use anomaly::{Anomaly, ValidationError, ValidationReport};
pub use builder::HistoryBuilder;
pub use chunk::{chunk_set, Chunk, ChunkSet};
pub use cluster::{clusters, Cluster, ClusterId};
pub use history::History;
pub use interval_tree::{IntervalTree, TreeInterval};
pub use op::{OpId, OpKind, Operation, Value, Weight, UNTAGGED_CLIENT};
pub use raw::RawHistory;
pub use render::render_timeline;
pub use repair::{repair, DropReason, RepairLog};
pub use stats::HistoryStats;
pub use time::Time;
pub use zone::{zones, Zone, ZoneKind};
