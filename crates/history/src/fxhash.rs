//! A fast, non-cryptographic hasher for the crate's hot paths.
//!
//! The streaming builder and per-segment validation hash millions of
//! small integer keys ([`Value`](crate::Value) ids, sequence numbers) per
//! second; the standard library's SipHash is DoS-resistant but several
//! times slower than needed. This is the Fx multiply-mix scheme used by
//! rustc (firefox-derived): fold each word into the state with a
//! rotate + xor + odd-constant multiply.
//!
//! **When to use it:** only for maps whose *size* is bounded by an
//! operator-chosen parameter — the builder's buffered/pending/retired
//! maps (≤ window resp. horizon entries) and per-segment validation maps
//! (≤ segment length). Adversarial keys can at worst make such a map
//! quadratic in its small bound. Maps that are both keyed by untrusted
//! input *and* unbounded (e.g. the stream pipeline's per-key state map,
//! one entry per distinct NDJSON key) must stay on the standard hasher:
//! there, engineered collisions are a real flooding surface.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Knuth's multiplicative constant (2^64 / φ), the usual Fx mixer.
const SEED: u64 = 0x517C_C1B7_2722_0A95;

/// The rustc-style Fx hasher: fast on small integer keys, not
/// collision-resistant against adversarial inputs (see module docs for
/// why that is acceptable here).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// An order-sensitive running fingerprint of a chunked byte stream, built
/// on the same Fx mixer. Checkpoint/resume uses it to verify that the
/// input prefix a resumed audit skips over is byte-identical to the one
/// the checkpoint summarised (see `kav stream --resume`).
///
/// The digest depends on the chunk boundaries as well as the bytes (each
/// [`update`](Fingerprint::update) folds in the chunk length), so callers
/// must feed identical chunks on both sides — the NDJSON reader feeds one
/// chunk per input line. Like [`FxHasher`], this is **not** cryptographic:
/// it detects accidental divergence (a rotated log, a truncated copy, an
/// edited record), not a deliberate forgery.
///
/// # Examples
///
/// ```
/// use kav_history::fxhash::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.update(b"line one\n");
/// a.update(b"line two\n");
///
/// let mut b = Fingerprint::new();
/// b.update(b"line one\n");
/// assert_ne!(a.value(), b.value());
/// b.update(b"line two\n");
/// assert_eq!(a.value(), b.value());
/// assert_eq!(a.bytes(), 18);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
    bytes: u64,
}

impl Fingerprint {
    /// A fingerprint of the empty stream.
    pub fn new() -> Self {
        Fingerprint { state: SEED, bytes: 0 }
    }

    /// Folds one chunk (for stream audits: one input line) into the digest.
    pub fn update(&mut self, chunk: &[u8]) {
        use std::hash::Hasher as _;
        let mut hasher = FxHasher { state: self.state };
        hasher.write_u64(chunk.len() as u64);
        hasher.write(chunk);
        self.state = hasher.finish();
        self.bytes += chunk.len() as u64;
    }

    /// The current 64-bit digest.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Total bytes folded in so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i, (i * 2) as u32);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&500), Some(&1000));
        assert_eq!(map.remove(&500), Some(1000));
        assert_eq!(map.get(&500), None);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(&7));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential integers must not collapse onto a few buckets: check
        // the low-order bits of hashes of 0..256 take many values.
        use std::hash::BuildHasher;
        let build = BuildHasherDefault::<FxHasher>::default();
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(build.hash_one(i) & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct buckets", low_bits.len());
    }

    #[test]
    fn fingerprint_is_chunk_and_order_sensitive() {
        let digest = |chunks: &[&[u8]]| {
            let mut fp = Fingerprint::new();
            for c in chunks {
                fp.update(c);
            }
            fp.value()
        };
        // Same bytes, different chunking or order: different digests.
        assert_ne!(digest(&[b"ab", b"c"]), digest(&[b"abc"]));
        assert_ne!(digest(&[b"a", b"b"]), digest(&[b"b", b"a"]));
        // Deterministic, and the empty chunk still advances the state.
        assert_eq!(digest(&[b"x", b"y"]), digest(&[b"x", b"y"]));
        assert_ne!(digest(&[b"x"]), digest(&[b"x", b""]));
    }

    #[test]
    fn hashes_arbitrary_byte_strings() {
        use std::hash::BuildHasher;
        let build = BuildHasherDefault::<FxHasher>::default();
        let a = build.hash_one("short");
        let b = build.hash_one("a longer string spanning chunks");
        assert_ne!(a, b);
        assert_eq!(a, build.hash_one("short"));
    }
}
