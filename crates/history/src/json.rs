//! On-disk JSON format for histories.
//!
//! The format is a direct serialisation of [`RawHistory`]:
//!
//! ```json
//! {
//!   "ops": [
//!     {"kind": "write", "value": 1, "start": 0, "finish": 10},
//!     {"kind": "read",  "value": 1, "start": 12, "finish": 20, "weight": 1}
//!   ]
//! }
//! ```
//!
//! `weight` defaults to 1 when omitted. Times and values are plain integers.

use crate::RawHistory;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Error reading or writing a history file.
#[derive(Debug)]
pub enum JsonError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Parse(serde_json::Error),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Io(e) => write!(f, "i/o error: {e}"),
            JsonError::Parse(e) => write!(f, "invalid history json: {e}"),
        }
    }
}

impl Error for JsonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JsonError::Io(e) => Some(e),
            JsonError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for JsonError {
    fn from(e: std::io::Error) -> Self {
        JsonError::Io(e)
    }
}

impl From<serde_json::Error> for JsonError {
    fn from(e: serde_json::Error) -> Self {
        JsonError::Parse(e)
    }
}

/// Serialises a history to a pretty-printed JSON string.
pub fn to_json_string(history: &RawHistory) -> String {
    serde_json::to_string_pretty(history).expect("RawHistory serialisation is infallible")
}

/// Parses a history from a JSON string.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// use kav_history::json;
///
/// let raw = json::from_json_str(
///     r#"{"ops":[{"kind":"write","value":1,"start":0,"finish":10}]}"#,
/// )?;
/// assert_eq!(raw.len(), 1);
/// # Ok::<(), kav_history::json::JsonError>(())
/// ```
pub fn from_json_str(json: &str) -> Result<RawHistory, JsonError> {
    Ok(serde_json::from_str(json)?)
}

/// Reads a history from a JSON file.
///
/// # Errors
///
/// Returns [`JsonError`] on I/O failure or malformed content.
pub fn read_history(path: impl AsRef<Path>) -> Result<RawHistory, JsonError> {
    let mut buf = String::new();
    fs::File::open(path)?.read_to_string(&mut buf)?;
    from_json_str(&buf)
}

/// Writes a history to a JSON file (pretty-printed).
///
/// # Errors
///
/// Returns [`JsonError::Io`] on I/O failure.
pub fn write_history(path: impl AsRef<Path>, history: &RawHistory) -> Result<(), JsonError> {
    let mut file = fs::File::create(path)?;
    file.write_all(to_json_string(history).as_bytes())?;
    file.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Time, Value};

    fn sample() -> RawHistory {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(10)).read(Value(1), Time(12), Time(20));
        raw
    }

    #[test]
    fn string_roundtrip() {
        let raw = sample();
        let js = to_json_string(&raw);
        let back = from_json_str(&js).unwrap();
        assert_eq!(raw, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kav_history_json_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        let raw = sample();
        write_history(&path, &raw).unwrap();
        let back = read_history(&path).unwrap();
        assert_eq!(raw, back);
        fs::remove_file(path).ok();
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = from_json_str("{").unwrap_err();
        assert!(matches!(err, JsonError::Parse(_)));
        assert!(err.to_string().contains("invalid history json"));
        assert!(err.source().is_some());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_history("/nonexistent/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, JsonError::Io(_)));
    }
}
