//! FZF Stage 1: maximal chunks and dangling clusters (§IV-A).
//!
//! A *chunk* is a set of clusters whose forward zones union to a continuous,
//! non-empty interval and whose backward zones all lie inside that interval.
//! The *chunk set* `CS(H)` consists of the maximal chunks covering every
//! forward cluster; backward clusters belonging to no chunk are *dangling*.
//!
//! Because all endpoints are distinct, two forward zones either overlap or
//! are separated by a gap — zones cannot merely "touch". Maximal chunks are
//! therefore exactly the maximal runs of pairwise-connected forward zones,
//! and their intervals are pairwise disjoint (any shared point would lie in
//! a zone of each run, merging them).

use crate::{ClusterId, Time, Zone, ZoneKind};
use serde::{Deserialize, Serialize};

/// One maximal chunk of the chunk set `CS(H)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// Forward clusters of the chunk, sorted by increasing zone low
    /// endpoint — precisely the order FZF's `TF` enumerates their writes.
    pub forward: Vec<ClusterId>,
    /// Backward clusters whose zones lie strictly inside `[low, high]`,
    /// sorted by increasing zone low endpoint.
    pub backward: Vec<ClusterId>,
    /// Left end of the union of forward zones (`K.l`).
    pub low: Time,
    /// Right end of the union of forward zones (`K.h`).
    pub high: Time,
}

impl Chunk {
    /// Total number of clusters in the chunk.
    pub fn num_clusters(&self) -> usize {
        self.forward.len() + self.backward.len()
    }
}

/// The chunk set of a history plus its dangling clusters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSet {
    /// Maximal chunks, sorted by increasing `low` (disjoint intervals).
    pub chunks: Vec<Chunk>,
    /// Backward clusters belonging to no chunk, sorted by zone low endpoint.
    pub dangling: Vec<ClusterId>,
}

impl ChunkSet {
    /// Total number of clusters across chunks and dangling clusters.
    pub fn num_clusters(&self) -> usize {
        self.chunks.iter().map(Chunk::num_clusters).sum::<usize>() + self.dangling.len()
    }
}

/// Computes `CS(H)` from the zones of a history (FZF Stage 1).
///
/// # Examples
///
/// ```
/// use kav_history::{RawHistory, Value, Time, clusters, zones, chunk_set};
///
/// let mut raw = RawHistory::new();
/// raw.write(Value(1), Time(0), Time(20));
/// raw.read(Value(1), Time(40), Time(60));    // forward zone [20,40]
/// raw.write(Value(2), Time(25), Time(35));   // backward zone inside it
/// raw.write(Value(3), Time(100), Time(120)); // backward zone far right: dangling
/// let h = raw.into_history()?;
/// let cs = clusters(&h);
/// let zs = zones(&h, &cs);
/// let chunked = chunk_set(&zs);
/// assert_eq!(chunked.chunks.len(), 1);
/// assert_eq!(chunked.chunks[0].backward.len(), 1);
/// assert_eq!(chunked.dangling.len(), 1);
/// # Ok::<(), kav_history::ValidationError>(())
/// ```
pub fn chunk_set(zones: &[Zone]) -> ChunkSet {
    // Sort forward zones by low endpoint and merge overlapping runs.
    let mut forward: Vec<&Zone> = zones.iter().filter(|z| z.is_forward()).collect();
    forward.sort_unstable_by_key(|z| z.low());

    let mut chunks: Vec<Chunk> = Vec::new();
    for zone in forward {
        match chunks.last_mut() {
            // Distinct endpoints: strict `<` and `<=` coincide here.
            Some(chunk) if zone.low() < chunk.high => {
                chunk.forward.push(zone.cluster);
                chunk.high = chunk.high.max(zone.high());
            }
            _ => chunks.push(Chunk {
                forward: vec![zone.cluster],
                backward: Vec::new(),
                low: zone.low(),
                high: zone.high(),
            }),
        }
    }

    // Attach each backward zone to the chunk strictly containing it, if any.
    let mut backward: Vec<&Zone> = zones
        .iter()
        .filter(|z| z.kind() == ZoneKind::Backward)
        .collect();
    backward.sort_unstable_by_key(|z| z.low());

    let mut dangling = Vec::new();
    for zone in backward {
        // Chunks are disjoint and sorted; find the last chunk starting
        // before the zone and test containment.
        let idx = chunks.partition_point(|c| c.low < zone.low());
        let host = idx.checked_sub(1).map(|i| &mut chunks[i]);
        match host {
            Some(chunk) if zone.high() < chunk.high => chunk.backward.push(zone.cluster),
            _ => dangling.push(zone.cluster),
        }
    }

    ChunkSet { chunks, dangling }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fz(id: usize, low: u64, high: u64) -> Zone {
        // forward: min_finish < max_start
        Zone { cluster: ClusterId(id), min_finish: Time(low), max_start: Time(high) }
    }

    fn bz(id: usize, low: u64, high: u64) -> Zone {
        // backward: max_start < min_finish
        Zone { cluster: ClusterId(id), min_finish: Time(high), max_start: Time(low) }
    }

    #[test]
    fn single_forward_zone_is_one_chunk() {
        let cs = chunk_set(&[fz(0, 2, 8)]);
        assert_eq!(cs.chunks.len(), 1);
        assert_eq!(cs.chunks[0].forward, vec![ClusterId(0)]);
        assert_eq!((cs.chunks[0].low, cs.chunks[0].high), (Time(2), Time(8)));
        assert!(cs.dangling.is_empty());
        assert_eq!(cs.num_clusters(), 1);
    }

    #[test]
    fn overlapping_forward_zones_merge_into_one_chunk() {
        let cs = chunk_set(&[fz(0, 0, 5), fz(1, 3, 9), fz(2, 8, 12)]);
        assert_eq!(cs.chunks.len(), 1);
        assert_eq!(cs.chunks[0].forward, vec![ClusterId(0), ClusterId(1), ClusterId(2)]);
        assert_eq!((cs.chunks[0].low, cs.chunks[0].high), (Time(0), Time(12)));
    }

    #[test]
    fn disjoint_forward_zones_split_chunks() {
        let cs = chunk_set(&[fz(0, 0, 5), fz(1, 7, 10)]);
        assert_eq!(cs.chunks.len(), 2);
        assert_eq!(cs.chunks[0].forward, vec![ClusterId(0)]);
        assert_eq!(cs.chunks[1].forward, vec![ClusterId(1)]);
    }

    #[test]
    fn backward_zone_strictly_inside_joins_chunk() {
        let cs = chunk_set(&[fz(0, 0, 10), bz(1, 2, 6)]);
        assert_eq!(cs.chunks[0].backward, vec![ClusterId(1)]);
        assert!(cs.dangling.is_empty());
    }

    #[test]
    fn straddling_or_outside_backward_zones_dangle() {
        let cs = chunk_set(&[
            fz(0, 5, 10),
            bz(1, 0, 3),   // entirely left
            bz(2, 8, 13),  // straddles the right boundary
            bz(3, 20, 25), // entirely right
        ]);
        assert!(cs.chunks[0].backward.is_empty());
        assert_eq!(cs.dangling, vec![ClusterId(1), ClusterId(2), ClusterId(3)]);
    }

    #[test]
    fn no_forward_zones_means_everything_dangles() {
        let cs = chunk_set(&[bz(0, 0, 3), bz(1, 5, 8)]);
        assert!(cs.chunks.is_empty());
        assert_eq!(cs.dangling.len(), 2);
    }

    /// The worked example of the paper's Figure 3: eight forward zones and
    /// seven backward zones yielding three maximal chunks
    /// {FZ1,BZ1}, {FZ2,FZ3,FZ4,BZ3,BZ4}, {FZ5..FZ8,BZ6} and dangling
    /// {BZ2, BZ5, BZ7}.
    #[test]
    fn figure3_structure() {
        // Coordinates transcribed from the figure's qualitative layout.
        let zs = vec![
            // chunk 1: FZ1 with BZ1 inside
            fz(0, 0, 10),
            bz(8, 3, 6),
            // dangling BZ2 between chunks 1 and 2
            bz(9, 11, 13),
            // chunk 2: FZ2 overlaps FZ3, FZ3 overlaps FZ4 (FZ2 ends before
            // FZ3 ends — the "middle chunk" shape of Lemma 4.2 Case 1)
            fz(1, 14, 20),
            fz(2, 18, 28),
            fz(3, 26, 34),
            bz(10, 16, 19),
            bz(11, 27, 30),
            // dangling BZ5 between chunks 2 and 3
            bz(12, 35, 37),
            // chunk 3: FZ5..FZ8 chained, FZ5 ends after FZ6 ends (the
            // "rightmost chunk" shape of Lemma 4.2 Case 2), BZ6 inside
            fz(4, 38, 52),
            fz(5, 44, 48),
            fz(6, 50, 60),
            fz(7, 58, 66),
            bz(13, 53, 56),
            // dangling BZ7 after chunk 3
            bz(14, 70, 75),
        ];
        let cs = chunk_set(&zs);
        assert_eq!(cs.chunks.len(), 3, "Figure 3 has three maximal chunks");
        assert_eq!(cs.chunks[0].forward, vec![ClusterId(0)]);
        assert_eq!(cs.chunks[0].backward, vec![ClusterId(8)]);
        assert_eq!(
            cs.chunks[1].forward,
            vec![ClusterId(1), ClusterId(2), ClusterId(3)]
        );
        assert_eq!(cs.chunks[1].backward, vec![ClusterId(10), ClusterId(11)]);
        assert_eq!(
            cs.chunks[2].forward,
            vec![ClusterId(4), ClusterId(5), ClusterId(6), ClusterId(7)]
        );
        assert_eq!(cs.chunks[2].backward, vec![ClusterId(13)]);
        assert_eq!(
            cs.dangling,
            vec![ClusterId(9), ClusterId(12), ClusterId(14)],
            "Figure 3 has three dangling clusters"
        );
    }
}
