//! Write shortening and dense re-ranking (§II-C, last assumption).
//!
//! The paper assumes WLOG that a write finishes before any of its dictated
//! reads *finishes*: a write's commit point cannot lie after a dictated read
//! has already returned its value, so the tail of the write interval past
//! that point is inert. [`normalize`] enforces the assumption by moving each
//! offending write's finish to just below the minimum finish time of its
//! dictated reads, then re-ranks all `2n` endpoints onto the dense grid
//! `0..2n`.
//!
//! Correctness of the repair relies on two facts:
//!
//! * the new finish stays above the write's start, because an anomaly-free
//!   read never finishes before its dictating write starts; and
//! * no two shortened finishes collide, because the minimum-finish read of a
//!   write is dictated by that write alone, so distinct writes shorten below
//!   distinct read finishes.

use crate::{Operation, RawHistory, Time};

/// Sort key for one endpoint during re-ranking. `phase == 0` places a
/// shortened write finish immediately *below* the read finish it attaches
/// to; original endpoints use `phase == 1`.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct EndpointKey {
    time: Time,
    phase: u8,
    op: usize,
    is_finish: bool,
}

/// Applies write shortening and re-ranks all endpoints onto `0..2n`.
///
/// `dictating[i]` must give, for each read `i`, the index of its dictating
/// write (`None` for writes). The input must already be anomaly-free with
/// pairwise distinct endpoints; both are guaranteed by
/// [`crate::RawHistory::validate`] before [`crate::History`] calls this.
pub(crate) fn normalize(raw: &RawHistory, dictating: &[Option<usize>]) -> Vec<Operation> {
    let n = raw.ops.len();

    // Minimum finish among each write's dictated reads.
    let mut min_read_finish: Vec<Option<Time>> = vec![None; n];
    for (i, op) in raw.ops.iter().enumerate() {
        if let Some(w) = dictating[i] {
            let slot = &mut min_read_finish[w];
            *slot = Some(match *slot {
                Some(t) => t.min(op.finish),
                None => op.finish,
            });
        }
    }

    let mut keys: Vec<EndpointKey> = Vec::with_capacity(2 * n);
    for (i, op) in raw.ops.iter().enumerate() {
        keys.push(EndpointKey { time: op.start, phase: 1, op: i, is_finish: false });
        let finish_key = match min_read_finish[i] {
            // Shorten: park the finish just below the earliest dictated-read
            // finish. (Equality is impossible: endpoints are distinct.)
            Some(min_rf) if op.finish > min_rf => {
                EndpointKey { time: min_rf, phase: 0, op: i, is_finish: true }
            }
            _ => EndpointKey { time: op.finish, phase: 1, op: i, is_finish: true },
        };
        keys.push(finish_key);
    }

    keys.sort_unstable();

    let mut ops = raw.ops.clone();
    for (rank, key) in keys.iter().enumerate() {
        let op = &mut ops[key.op];
        if key.is_finish {
            op.finish = Time(rank as u64);
        } else {
            op.start = Time(rank as u64);
        }
    }

    debug_assert!(ops.iter().all(|op| op.start < op.finish));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RawHistory, Time, Value};

    fn dictating_map(raw: &RawHistory) -> Vec<Option<usize>> {
        raw.ops
            .iter()
            .map(|op| {
                if op.is_read() {
                    raw.ops.iter().position(|w| w.is_write() && w.value == op.value)
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn already_normalized_history_keeps_order() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(10)).read(Value(1), Time(20), Time(30));
        let d = dictating_map(&raw);
        let ops = normalize(&raw, &d);
        assert!(ops[0].start < ops[0].finish);
        assert!(ops[0].finish < ops[1].start);
        assert!(ops[1].start < ops[1].finish);
        // Dense grid 0..4.
        let mut all: Vec<u64> = ops
            .iter()
            .flat_map(|o| [o.start.as_u64(), o.finish.as_u64()])
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn long_write_is_shortened_below_first_dictated_read_finish() {
        let mut raw = RawHistory::new();
        // Write spans the whole history; its dictated read finishes at 15.
        raw.write(Value(1), Time(0), Time(100)).read(Value(1), Time(5), Time(15));
        let d = dictating_map(&raw);
        let ops = normalize(&raw, &d);
        let (w, r) = (ops[0], ops[1]);
        assert!(w.finish < r.finish, "write must finish before its dictated read finishes");
        assert!(w.start < w.finish, "interval must stay proper");
        assert!(r.start < w.finish, "shortening must not push the write before the read start");
    }

    #[test]
    fn shortening_lands_immediately_below_the_read_finish() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(100)) // shortened below t=15
            .read(Value(1), Time(5), Time(15))
            .write(Value(2), Time(11), Time(13)); // unrelated write inside
        let d = dictating_map(&raw);
        let ops = normalize(&raw, &d);
        // Order of endpoints: w1.s=0, r.s=5, w2.s=11, w2.f=13, [w1.f], r.f=15
        assert_eq!(ops[0].start, Time(0));
        assert_eq!(ops[1].start, Time(1));
        assert_eq!(ops[2].start, Time(2));
        assert_eq!(ops[2].finish, Time(3));
        assert_eq!(ops[0].finish, Time(4), "shortened finish parks just below the read finish");
        assert_eq!(ops[1].finish, Time(5));
    }

    #[test]
    fn two_writes_shorten_below_distinct_reads_without_collision() {
        let mut raw = RawHistory::new();
        raw.write(Value(1), Time(0), Time(50))
            .read(Value(1), Time(2), Time(10))
            .write(Value(2), Time(1), Time(60))
            .read(Value(2), Time(3), Time(12));
        let d = dictating_map(&raw);
        let ops = normalize(&raw, &d);
        let mut all: Vec<u64> = ops
            .iter()
            .flat_map(|o| [o.start.as_u64(), o.finish.as_u64()])
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8, "all endpoints stay distinct after shortening");
        assert!(ops[0].finish < ops[1].finish);
        assert!(ops[2].finish < ops[3].finish);
    }
}
