//! Why §II-C insists on accurate timestamps (TrueTime-style): verification
//! consumes the *recorded* history, and skewed probe clocks manufacture
//! anomalies and false staleness verdicts out of thin air.
//!
//! We run the same strict-quorum store three times — honest clocks, modest
//! skew, heavy skew — and audit the recorded traces.
//!
//! ```sh
//! cargo run --example clock_skew
//! ```

use k_atomicity::sim::{SimConfig, Simulation};
use k_atomicity::verify::{smallest_k, Staleness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("strict quorums (N=3, R=W=2), same workload, varying probe clock skew\n");
    println!("skew bound | dirty traces | dropped ops | measured k (after repair)");

    for skew_us in [0u64, 500, 50_000, 200_000] {
        let mut dirty = 0;
        let mut dropped = 0;
        let mut worst_k = 1u64;
        for seed in 0..6 {
            let output = Simulation::new(SimConfig {
                clients: 6,
                ops_per_client: 30,
                keys: 2,
                clock_skew: skew_us,
                seed,
                ..SimConfig::default()
            })?
            .run();
            for (_, raw) in &output.histories {
                if !raw.validate().is_clean() {
                    dirty += 1;
                }
            }
            for (_, history, log) in output.into_repaired_histories()? {
                dropped += log.dropped.len();
                let k = match smallest_k(&history, Some(300_000)) {
                    Staleness::Exact(k) | Staleness::AtLeast(k) => k,
                };
                worst_k = worst_k.max(k);
            }
        }
        println!(
            "{:>9}us | {dirty:>12} | {dropped:>11} | k <= {worst_k}",
            skew_us
        );
    }

    println!(
        "\nWith honest clocks this deployment is atomic; skew first mislabels\n\
         it stale, then breaks the recorded traces outright (reads apparently\n\
         preceding their writes), which `repair` has to drop. The paper's\n\
         assumption that operations (tens of ms) dwarf clock error (~us with\n\
         TrueTime) is what makes verification verdicts trustworthy."
    );
    Ok(())
}
