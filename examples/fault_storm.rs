//! Auditing a store that is actively falling apart: the `fault-storm`
//! scenario crashes a replica, partitions another, reconfigures the quorum
//! mid-run and skews two client clocks past the declared bound — all at
//! once. The manifest tells us what an auditor *should* conclude; the
//! verifiers tell us what one *does* conclude. The point of the exercise is
//! that the two agree: genuine staleness yields sound NOs, damaged
//! evidence yields UNKNOWN, and no fault combination tricks the audit into
//! an unearned YES.
//!
//! ```sh
//! cargo run --example fault_storm
//! ```

use k_atomicity::sim::scenario;
use k_atomicity::verify::{smallest_k, GenK, PipelineConfig, Staleness, StreamPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = scenario("fault-storm", 3).expect("built-in scenario").run()?;
    let m = &run.manifest;

    println!("scenario `{}` (seed {})", m.name, m.seed);
    println!(
        "  expected class: {} at k = {}",
        m.expected.name(),
        m.k_bound
    );
    println!(
        "  {} records over {} keys | {} timeouts | {} lost writes | {} reconfigs",
        m.records, m.keys, m.timeouts, m.lost_writes, m.reconfigs
    );
    println!("  injected faults:");
    for fault in &m.faults.faults {
        println!("    - {fault:?}");
    }

    // Offline ground truth per key: is the record even trustworthy, and if
    // so, how stale is the store really?
    println!("\nper-key ground truth (offline, exact):");
    for (key, raw) in &run.output.histories {
        if raw.validate().is_clean() {
            let history = raw.clone().into_history()?;
            let k = match smallest_k(&history, Some(1_000_000)) {
                Staleness::Exact(k) => format!("exactly {k}"),
                Staleness::AtLeast(k) => format!("at least {k}"),
            };
            println!("  key {key}: clean record, staleness {k}");
        } else {
            println!("  key {key}: record damaged by clock faults — not auditable as-is");
        }
    }

    // The streaming audit, exactly as `kav stream` would run it.
    println!("\nstreaming audit at k = {}:", m.k_bound);
    let mut pipeline = StreamPipeline::new(
        GenK::with_gap_budget(m.k_bound, Some(1_000_000)),
        PipelineConfig { shards: 2, window: 64, ..Default::default() },
    );
    for record in &run.records {
        pipeline.push(record.key, record.op());
    }
    let output = pipeline.finish();
    for (key, report) in &output.keys {
        let verdict = match report.k_atomic() {
            Some(true) => "YES (certified)",
            Some(false) => "NO (violation witnessed)",
            None => "UNKNOWN (uncertifiable evidence)",
        };
        println!("  key {key}: {verdict} — {report}");
    }
    for (key, error) in &output.errors {
        println!("  key {key}: stream rejected ({error})");
    }

    println!(
        "\nThe storm never produces an unearned YES: keys with genuine\n\
         staleness refute soundly, and keys whose records the skewed clocks\n\
         corrupted degrade to UNKNOWN or are rejected outright. That is the\n\
         soundness contract `tests/fault_matrix.rs` pins down for every\n\
         fault class."
    );
    Ok(())
}
