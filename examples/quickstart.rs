//! Quickstart: build a history by hand, test it at k = 1 and k = 2, and
//! inspect the witness.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use k_atomicity::history::{HistoryBuilder, HistoryStats};
use k_atomicity::verify::{check_witness, smallest_k, Fzf, GkOneAv, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A client writes v1, another writes v2 strictly later, and a third
    // then reads... v1. One write stale: the k = 2 situation the paper
    // calls "at most a few updates behind".
    let history = HistoryBuilder::new()
        .write(1, 0, 10)
        .write(2, 12, 20)
        .read(1, 22, 30)
        .build()?;

    println!("history census:\n{}\n", HistoryStats::of(&history));

    // Linearizability (1-atomicity) fails...
    let atomic = GkOneAv.verify(&history);
    println!("1-atomic (linearizable)? {atomic}");

    // ...but 2-atomicity holds, with a certificate.
    let verdict = Fzf.verify(&history);
    println!("2-atomic?                {verdict}");
    if let Some(witness) = verdict.witness() {
        check_witness(&history, witness, 2)?;
        let order: Vec<String> = witness
            .iter()
            .map(|id| history.op(*id).to_string())
            .collect();
        println!("checked witness order:   {}", order.join("  <  "));
    }

    // The exact staleness bound, via the paper's §II-B search.
    println!("smallest k:              {}", smallest_k(&history, None));
    Ok(())
}
