//! An offline audit pipeline: capture histories to JSON (here from the
//! simulator; in production from client-side logs with TrueTime-style
//! timestamps, §II-C), then verify them file by file — the workflow behind
//! `kav sim` / `kav verify`.
//!
//! ```sh
//! cargo run --example audit_pipeline
//! ```

use k_atomicity::history::{json, HistoryStats};
use k_atomicity::sim::{SimConfig, Simulation};
use k_atomicity::verify::{smallest_k, Fzf, Lbt, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("kav_audit_example");
    std::fs::create_dir_all(&dir)?;

    // Capture: run the store and persist one trace per key.
    let output = Simulation::new(SimConfig {
        clients: 6,
        ops_per_client: 35,
        keys: 3,
        seed: 99,
        ..SimConfig::default()
    })?
    .run();
    let mut paths = Vec::new();
    for (key, raw) in &output.histories {
        let path = dir.join(format!("trace-key{key}.json"));
        json::write_history(&path, raw)?;
        paths.push(path);
    }
    println!("captured {} traces under {}\n", paths.len(), dir.display());

    // Audit: load each trace fresh, validate, verify, report.
    for path in &paths {
        let raw = json::read_history(path)?;
        let report = raw.validate();
        if !report.is_clean() {
            println!("{}: REJECTED ({} anomalies)", path.display(), report.anomalies().len());
            continue;
        }
        let history = raw.into_history()?;
        let stats = HistoryStats::of(&history);
        let fzf = Fzf.verify(&history).is_k_atomic();
        let lbt = Lbt::new().verify(&history).is_k_atomic();
        assert_eq!(fzf, lbt, "verifiers must agree");
        println!(
            "{}: {} ops, c = {}, 2-atomic: {}, {}",
            path.display(),
            stats.ops,
            stats.max_concurrent_writes,
            if fzf { "yes" } else { "no" },
            smallest_k(&history, Some(500_000)),
        );
        std::fs::remove_file(path).ok();
    }
    Ok(())
}
