//! Turning the tuning knobs back (§I): verification tells an operator
//! whether a system delivers *more* consistency than the application needs,
//! so quorum sizes can be reduced to cut latency.
//!
//! We sweep (R, W) for N = 5 and report both the latency the configuration
//! buys and the staleness bound it actually delivered. If every key
//! verifies at k <= 2 and the application tolerates k = 2, the operator can
//! pick the cheapest such row.
//!
//! ```sh
//! cargo run --example quorum_tuning
//! ```

use k_atomicity::sim::{LatencyModel, SimConfig, Simulation};
use k_atomicity::verify::{smallest_k, Staleness};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("N = 5 replicas, 6 clients, lagging replicas; sweeping (R, W)\n");
    println!("  R | W | strict? | mean read us | mean write us | worst k over keys");

    for (r, w) in [(3, 3), (2, 4), (4, 2), (2, 2), (1, 3), (1, 1)] {
        let config = SimConfig {
            replicas: 5,
            read_quorum: r,
            write_quorum: w,
            clients: 6,
            ops_per_client: 30,
            keys: 3,
            apply_lag: LatencyModel::Uniform { lo: 1_000, hi: 20_000 },
            seed: 7,
            ..SimConfig::default()
        };
        let strict = config.strict_quorums();
        let output = Simulation::new(config)?.run();
        let read_us = output.stats.mean_read_latency();
        let write_us = output.stats.mean_write_latency();

        let mut worst = 1u64;
        let mut exact = true;
        for (_, history) in output.into_histories()? {
            match smallest_k(&history, Some(500_000)) {
                Staleness::Exact(k) => worst = worst.max(k),
                Staleness::AtLeast(k) => {
                    worst = worst.max(k);
                    exact = false;
                }
            }
        }
        println!(
            "  {r} | {w} | {:<7} | {read_us:>12.0} | {write_us:>13.0} | {}{worst}",
            if strict { "yes" } else { "no" },
            if exact { "k = " } else { "k >= " },
        );
    }
    println!(
        "\nReading the table: strict rows (R+W>N) pin k <= 2 but pay quorum\n\
         latency; sloppy rows are faster and k quantifies what that costs."
    );
    Ok(())
}
