//! A crash-resumable streaming audit: checkpoint the pipeline mid-stream,
//! "crash" (discard every live thread and buffer), resume from the
//! serialized checkpoint in what would be a fresh process, and confirm
//! the verdicts are byte-for-byte those of an uninterrupted audit — the
//! workflow behind `kav stream --checkpoint` / `--resume` (operator's
//! guide: docs/OPERATIONS.md).
//!
//! ```sh
//! cargo run --example resume_audit
//! ```

use k_atomicity::verify::{Fzf, PipelineConfig, PipelineSnapshot, StreamPipeline};
use k_atomicity::workloads::{streaming_workload, StreamingWorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A multi-key audit-log stream, 2-atomic by construction.
    let records = streaming_workload(StreamingWorkloadConfig {
        keys: 4,
        ops_per_key: 300,
        k: 2,
        seed: 23,
        ..Default::default()
    });
    let config = PipelineConfig { shards: 2, window: 64, ..Default::default() };
    println!("auditing {} records across 4 keys (window 64, 2 shards)\n", records.len());

    // The reference run: never interrupted.
    let mut pipeline = StreamPipeline::new(Fzf, config);
    for record in &records {
        pipeline.push(record.key, record.op());
    }
    let uninterrupted = pipeline.finish();

    // The crash run: audit 60%, checkpoint, die.
    let cut = records.len() * 6 / 10;
    let mut doomed = StreamPipeline::new(Fzf, config);
    for record in &records[..cut] {
        doomed.push(record.key, record.op());
    }
    let checkpoint = serde_json::to_string(&doomed.snapshot())?;
    drop(doomed); // the crash: threads, buffers, everything is gone
    println!(
        "checkpointed after {cut} records ({} bytes of JSON), then \"crashed\"",
        checkpoint.len()
    );

    // The resumed run: a new process parses the checkpoint and continues.
    // `true` asserts the input is re-fed from exactly the checkpointed
    // position — `kav stream` proves this by fingerprinting the skipped
    // prefix; pass `false` when it cannot be proven and YES degrades to
    // UNKNOWN instead (NO stays sound either way).
    let snapshot: PipelineSnapshot = serde_json::from_str(&checkpoint)?;
    let mut resumed = StreamPipeline::resume(Fzf, config, &snapshot, true)?;
    for record in &records[cut..] {
        resumed.push(record.key, record.op());
    }
    let output = resumed.finish();
    println!("resumed and audited the remaining {} records\n", records.len() - cut);

    println!("key | verdict (resumed) | identical to uninterrupted run?");
    for ((key, report), (_, reference)) in output.keys.iter().zip(&uninterrupted.keys) {
        let verdict = match report.k_atomic() {
            Some(true) => "YES",
            Some(false) => "NO",
            None => "UNKNOWN",
        };
        println!("{key:>3} | {verdict:>17} | {}", report == reference);
    }
    assert_eq!(output.keys, uninterrupted.keys, "kill-and-resume must be invisible");
    assert_eq!(output.all_k_atomic(), Some(true));
    println!("\nall verdicts identical: the crash was invisible to the audit");
    Ok(())
}
