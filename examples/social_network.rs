//! The paper's motivating scenario (§I): a social-network feed backed by a
//! sloppy-quorum store. Users tolerate reads that are "at most a few
//! updates behind" — k-atomicity is the property that makes this precise.
//!
//! We simulate a profile-status register replicated across 5 nodes with
//! R = W = 1 (fast but sloppy) and replica lag, then measure how far behind
//! reads actually get, per key.
//!
//! ```sh
//! cargo run --example social_network
//! ```

use k_atomicity::sim::{LatencyModel, SimConfig, Simulation};
use k_atomicity::verify::{smallest_k, GkOneAv, Staleness, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig {
        replicas: 5,
        read_quorum: 1, // read from any single replica: lowest latency
        write_quorum: 1, // ack after one replica: lowest latency
        clients: 8,
        ops_per_client: 25,
        keys: 4, // four users' status registers
        read_fraction: 0.7,
        network: LatencyModel::Uniform { lo: 50, hi: 500 },
        apply_lag: LatencyModel::Uniform { lo: 2_000, hi: 40_000 },
        seed: 2013,
        ..SimConfig::default()
    };
    println!(
        "simulating a feed over N={} replicas, R={}, W={} (sloppy), with replica lag...\n",
        config.replicas, config.read_quorum, config.write_quorum
    );
    let output = Simulation::new(config)?.run();
    println!(
        "{} reads / {} writes, mean read latency {:.0} us\n",
        output.stats.reads,
        output.stats.writes,
        output.stats.mean_read_latency()
    );

    println!("user | ops | linearizable? | staleness bound (smallest k)");
    for (key, history) in output.into_histories()? {
        let atomic = GkOneAv.verify(&history).is_k_atomic();
        let staleness = smallest_k(&history, Some(1_000_000));
        let verdict = match staleness {
            Staleness::Exact(1) => "fresh (atomic)".to_string(),
            Staleness::Exact(k) => format!("at most {} updates behind", k - 1),
            Staleness::AtLeast(k) => format!("at least {} updates behind", k - 1),
        };
        println!(
            "{key:>4} | {:>3} | {:<13} | {verdict}",
            history.len(),
            if atomic { "yes" } else { "no" },
        );
    }
    println!(
        "\nInterpretation: with R + W <= N nothing bounds staleness a priori;\n\
         the k-AV verifiers measure what the deployment actually delivered."
    );
    Ok(())
}
