//! Important writes (§V): the weighted k-AV problem lets a store mark some
//! writes as important — a read may skip many unimportant writes but only a
//! few important ones. This example also walks the Figure-5 reduction to
//! show why the weighted problem is NP-complete.
//!
//! ```sh
//! cargo run --example weighted_writes
//! ```

use k_atomicity::history::HistoryBuilder;
use k_atomicity::verify::Verdict;
use k_atomicity::weighted::{reduce_bin_packing, BinPacking, WkavInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A profile register: frequent presence updates (weight 1) and one
    // account-security update (weight 10). A feed read may lag presence
    // freely but must not miss the security update by much.
    let history = HistoryBuilder::new()
        .weighted_write(1, 0, 10, 1) // presence
        .weighted_write(2, 12, 20, 1) // presence
        .weighted_write(3, 22, 30, 10) // SECURITY — important
        .weighted_write(4, 32, 40, 1) // presence
        .read(1, 42, 50) // a very stale read
        .build()?;

    // Skipping w2, w3, w4 costs 1 + 1 + 10 + 1 = 13 separation units.
    for k in [4, 12, 13] {
        let verdict = WkavInstance::new(history.clone(), k).decide(None);
        println!("k = {k:>2}: {verdict}");
    }
    println!("-> the important write dominates the staleness budget\n");

    // Theorem 5.1: deciding this in general is NP-complete. The reduction
    // packs items into bins between consecutive short writes.
    let bp = BinPacking::new(vec![4, 3, 3, 2], 2, 6)?;
    println!(
        "bin packing: items {:?} into {} bins of capacity {}",
        bp.sizes(),
        bp.bins(),
        bp.capacity()
    );
    let instance = reduce_bin_packing(&bp);
    println!(
        "reduced to k-WAV: {} operations, k = B + 2 = {}",
        instance.history.len(),
        instance.k
    );
    match instance.decide(None) {
        Verdict::KAtomic { .. } => {
            println!("k-WAV solvable  <=>  packing feasible: {}", bp.solve_exact().is_some())
        }
        Verdict::NotKAtomic => {
            println!("k-WAV unsolvable <=>  packing infeasible: {}", bp.solve_exact().is_none())
        }
        Verdict::Inconclusive => unreachable!("unbounded search"),
        Verdict::Consistent => unreachable!("k-WAV verdicts carry witnesses"),
    }
    Ok(())
}
