//! Distribution must be invisible: a coordinator fanning a stream over
//! worker processes has to finish with reports **byte-identical** to the
//! single-process [`StreamPipeline`] on the same records — for any worker
//! count, any `k`, either ingest encoding (NDJSON or binary frames), and
//! across mid-stream checkpoints and hot-shard splits. §II-B guarantees
//! this is achievable (per-key verdicts ignore placement); this suite is
//! the fleet determinism gate that holds the implementation to it.
//!
//! The workers here are real [`worker_loop`]s speaking the full wire
//! protocol over socket pairs — only the process boundary is elided.
//!
//! [`StreamPipeline`]: k_atomicity::verify::StreamPipeline
//! [`worker_loop`]: k_atomicity::verify::worker_loop

use k_atomicity::history::frame::{FrameReader, FrameWriter};
use k_atomicity::history::ndjson::{self, StreamRecord};
use k_atomicity::verify::{
    worker_loop, FleetConfig, FleetCoordinator, FleetSummary, Fzf, GenK, GkOneAv, KeyError,
    KeyReport, ModelId, PipelineConfig, PipelineOutput, PipelineSnapshot, StreamPipeline,
    Verifier, WorkerLink,
};
use k_atomicity::workloads::{streaming_workload, StreamingWorkloadConfig};
use proptest::prelude::*;
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;

/// Spawns `workers` worker loops on socket pairs, returning the
/// coordinator-side links and the join handles.
fn spawn_workers<V: Verifier + Clone + Send + 'static>(
    verifier: V,
    workers: usize,
) -> (Vec<WorkerLink>, Vec<JoinHandle<()>>) {
    let mut links = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (coordinator_side, worker_side) = UnixStream::pair().expect("socketpair");
        let v = verifier.clone();
        handles.push(std::thread::spawn(move || {
            let input = worker_side.try_clone().expect("clone worker socket");
            // Normal shutdown is Ok(()); a dropped coordinator surfaces
            // as Disconnected, which is also a clean worker exit here.
            let _ = worker_loop(v, input, worker_side);
        }));
        links.push(WorkerLink {
            writer: Box::new(coordinator_side.try_clone().expect("clone coordinator socket")),
            reader: Box::new(coordinator_side),
        });
    }
    (links, handles)
}

fn fleet_config<V: Verifier>(verifier: &V, window: usize) -> FleetConfig {
    FleetConfig {
        algo: verifier.name().to_owned(),
        model: ModelId::KAtomic,
        k: verifier.k(),
        window,
        horizon: None,
        worker_shards: 2,
        batch: 7, // deliberately off-stride so batches straddle cuts
        checkpoint_every: 0,
        replay_cap: 1 << 20,
    }
}

/// Runs `records` through a real fleet, snapshotting at each index in
/// `cuts` (and splitting the hottest shard at `split_at`, if any).
fn fleet_run<V: Verifier + Clone + Send + 'static>(
    verifier: V,
    workers: usize,
    window: usize,
    records: &[StreamRecord],
    cuts: &[usize],
    split_at: Option<usize>,
) -> (PipelineOutput, FleetSummary, Vec<PipelineSnapshot>) {
    let (links, handles) = spawn_workers(verifier.clone(), workers);
    let mut fleet =
        FleetCoordinator::new(fleet_config(&verifier, window), links).expect("fleet start");
    let mut snapshots = Vec::new();
    for (i, record) in records.iter().enumerate() {
        if let Some(split) = split_at {
            if split == i {
                fleet.split_hottest().expect("split");
            }
        }
        if cuts.contains(&i) {
            snapshots.push(fleet.snapshot_fleet().expect("fleet snapshot"));
        }
        fleet.push(record.key, record.op()).expect("push");
    }
    let (output, summary) = fleet.finish().expect("fleet finish");
    for handle in handles {
        handle.join().expect("worker thread");
    }
    (output, summary, snapshots)
}

/// The single-process reference: same records, same cuts.
fn single_run<V: Verifier + Clone + Send + 'static>(
    verifier: V,
    window: usize,
    records: &[StreamRecord],
    cuts: &[usize],
) -> (PipelineOutput, Vec<PipelineSnapshot>) {
    let mut pipeline = StreamPipeline::new(
        verifier,
        PipelineConfig { shards: 2, window, ..Default::default() },
    );
    let mut snapshots = Vec::new();
    for (i, record) in records.iter().enumerate() {
        if cuts.contains(&i) {
            snapshots.push(pipeline.snapshot());
        }
        pipeline.push(record.key, record.op());
    }
    (pipeline.finish(), snapshots)
}

/// Byte-identity of finished outputs, via the serialized report vectors
/// (the same shapes the wire protocol carries).
fn serialize_output(output: &PipelineOutput) -> String {
    let keys: Vec<KeyReport> = output
        .keys
        .iter()
        .map(|(key, report)| KeyReport { key: *key, report: report.clone() })
        .collect();
    let errors: Vec<KeyError> = output
        .errors
        .iter()
        .map(|(key, error)| KeyError { key: *key, error: error.clone() })
        .collect();
    format!(
        "{}\n{}",
        serde_json::to_string(&keys).unwrap(),
        serde_json::to_string(&errors).unwrap()
    )
}

fn assert_outputs_identical(fleet: &PipelineOutput, single: &PipelineOutput, ctx: &str) {
    assert_eq!(
        serialize_output(fleet),
        serialize_output(single),
        "fleet output must be byte-identical to single-process ({ctx})"
    );
    assert_eq!(fleet.all_k_atomic(), single.all_k_atomic(), "{ctx}");
}

/// Roundtrips records through the chosen on-disk encoding, so the fleet
/// ingests exactly what a `kav serve` invocation would decode.
fn through_encoding(records: &[StreamRecord], binary: bool) -> Vec<StreamRecord> {
    if binary {
        let mut writer = FrameWriter::new(Vec::new());
        for record in records {
            writer.write_record(record).unwrap();
        }
        let bytes = writer.finish().unwrap();
        FrameReader::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap()
    } else {
        let doc: String = records.iter().map(|r| ndjson::to_line(r) + "\n").collect();
        ndjson::Reader::new(doc.as_bytes()).collect::<Result<_, _>>().unwrap()
    }
}

fn workload(keys: u64, ops_per_key: usize, k: u64, seed: u64) -> Vec<StreamRecord> {
    streaming_workload(StreamingWorkloadConfig {
        keys,
        ops_per_key,
        k,
        spread: 3,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism gate: workers {1,2,4} × k {1,3} × both encodings,
    /// with two mid-stream fleet checkpoints that must equal the
    /// single-process snapshots at the same cuts.
    #[test]
    fn fleet_report_is_byte_identical_to_single_process(
        workers_pick in 0usize..3,
        use_k3 in any::<bool>(),
        binary in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let workers = [1, 2, 4][workers_pick];
        let k = if use_k3 { 3 } else { 1 };
        let records = through_encoding(&workload(12, 40, k, seed), binary);
        let cuts = [records.len() / 3, 2 * records.len() / 3];
        let window = 8;

        let run = |records: &[StreamRecord], cuts: &[usize]| {
            if use_k3 {
                let v = GenK::new(3);
                (fleet_run(v, workers, window, records, cuts, None),
                 single_run(v, window, records, cuts))
            } else {
                let v = GkOneAv;
                (fleet_run(v, workers, window, records, cuts, None),
                 single_run(GkOneAv, window, records, cuts))
            }
        };
        let ((fleet, summary, fleet_snaps), (single, single_snaps)) = run(&records, &cuts);

        let ctx = format!("workers={workers} k={k} binary={binary} seed={seed}");
        assert_outputs_identical(&fleet, &single, &ctx);
        prop_assert_eq!(summary.workers, workers);
        prop_assert_eq!(summary.hand_offs, 0);
        prop_assert_eq!(summary.uncertified_hand_offs, 0);
        // Fleet checkpoints are ordinary checkpoints: byte-identical to
        // the single-process snapshot at the same consistent cut.
        prop_assert_eq!(fleet_snaps.len(), single_snaps.len());
        for (fleet_snap, single_snap) in fleet_snaps.iter().zip(&single_snaps) {
            prop_assert_eq!(
                serde_json::to_string(fleet_snap).unwrap(),
                serde_json::to_string(single_snap).unwrap(),
                "merged fleet checkpoint differs from single-process ({})", ctx
            );
        }
    }

    /// Splitting the hottest shard mid-stream re-homes state with a
    /// verified chain: the final report is still byte-identical and
    /// nothing is tainted.
    #[test]
    fn hot_shard_split_preserves_the_report(
        workers_pick in 0usize..2,
        seed in 0u64..1_000,
        split_frac in 1usize..4,
    ) {
        let workers = [2, 4][workers_pick];
        let records = workload(10, 30, 2, seed);
        let split_at = records.len() * split_frac / 4;
        let window = 8;
        let (fleet, summary, _) =
            fleet_run(Fzf, workers, window, &records, &[], Some(split_at));
        let (single, _) = single_run(Fzf, window, &records, &[]);
        assert_outputs_identical(&fleet, &single, &format!("split at {split_at}"));
        prop_assert_eq!(summary.splits, 1);
        prop_assert_eq!(summary.ranges, workers.next_power_of_two() + 1);
        prop_assert_eq!(summary.uncertified_hand_offs, 0);
    }
}

/// A fleet must prove violations exactly where the single process does:
/// seeded non-atomic workloads keep their NO through distribution.
#[test]
fn fleet_preserves_violations() {
    for seed in [7u64, 21, 99] {
        let records = workload(6, 60, 1, seed);
        let (single, _) = single_run(GkOneAv, 4, &records, &[]);
        let (fleet, _, _) = fleet_run(GkOneAv, 3, 4, &records, &[], None);
        assert_outputs_identical(&fleet, &single, &format!("seed {seed}"));
    }
}
