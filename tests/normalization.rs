//! The §II-C write-shortening normalisation is semantically free.
//!
//! `History` construction re-times every write with dictated reads so it
//! finishes just below their earliest finish (the paper's WLOG step). To
//! check that this never changes a verdict, this test implements an
//! independent reference decision procedure that works directly on the
//! *raw, unnormalised* operations — enumerating linear extensions of the
//! raw "precedes" order with no shared code — and compares it against the
//! production pipeline (validation + normalisation + oracle) for k = 1..3.

use k_atomicity::history::{Operation, RawHistory, Time, Value};
use k_atomicity::verify::{ExhaustiveSearch, Verdict, Verifier};
use proptest::prelude::*;

/// Reference decision: does some linear extension of the raw interval
/// order place every read at separation <= k? Exponential; test-only.
fn reference_k_atomic(ops: &[Operation], k: u64) -> bool {
    fn precedes(a: &Operation, b: &Operation) -> bool {
        a.finish < b.start
    }
    fn extend(
        ops: &[Operation],
        k: u64,
        placed: &mut Vec<usize>,
        used: &mut Vec<bool>,
    ) -> bool {
        if placed.len() == ops.len() {
            return true;
        }
        'candidates: for i in 0..ops.len() {
            if used[i] {
                continue;
            }
            // Minimal among the unplaced: nothing unplaced precedes it.
            for j in 0..ops.len() {
                if !used[j] && j != i && precedes(&ops[j], &ops[i]) {
                    continue 'candidates;
                }
            }
            // A read must follow its dictating write within weight k.
            if ops[i].is_read() {
                let mut separation = 0u64;
                let mut found = false;
                for &p in placed.iter().rev() {
                    if ops[p].is_write() {
                        separation += u64::from(ops[p].weight.as_u32());
                        if ops[p].value == ops[i].value {
                            found = true;
                            break;
                        }
                    }
                }
                if !found || separation > k {
                    continue 'candidates;
                }
            }
            used[i] = true;
            placed.push(i);
            if extend(ops, k, placed, used) {
                return true;
            }
            placed.pop();
            used[i] = false;
        }
        false
    }
    extend(ops, k, &mut Vec::new(), &mut vec![false; ops.len()])
}

/// Arbitrary small anomaly-free raw histories — including writes whose
/// finishes extend far beyond their dictated reads (the case normalisation
/// rewrites).
fn arb_raw() -> impl Strategy<Value = RawHistory> {
    let writes = prop::collection::vec((0u64..40, 1u64..60), 1..5);
    let reads = prop::collection::vec((any::<prop::sample::Index>(), 0u64..30, 1u64..25), 0..5);
    (writes, reads).prop_map(|(writes, reads)| {
        let mut raw = RawHistory::new();
        for (i, &(start, len)) in writes.iter().enumerate() {
            raw.push(Operation::write(Value(i as u64 + 1), Time(start), Time(start + len)));
        }
        for (which, offset, len) in reads {
            let w = which.index(writes.len());
            let start = writes[w].0 + offset;
            raw.push(Operation::read(Value(w as u64 + 1), Time(start), Time(start + len)));
        }
        raw.make_endpoints_distinct();
        raw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn pipeline_verdicts_match_the_unnormalized_reference(raw in arb_raw()) {
        let history = raw.clone().into_history().expect("anomaly-free");
        for k in 1..=3u64 {
            let reference = reference_k_atomic(&raw.ops, k);
            let pipeline = match ExhaustiveSearch::new(k).verify(&history) {
                Verdict::KAtomic { .. } => true,
                Verdict::NotKAtomic => false,
                Verdict::Inconclusive => {
                    return Err(TestCaseError::fail("oracle must be decisive"))
                }
                Verdict::Consistent => {
                    return Err(TestCaseError::fail(
                        "k-atomic oracle must carry a witness, not a bare Consistent",
                    ))
                }
            };
            prop_assert_eq!(
                pipeline,
                reference,
                "normalisation changed the k={} verdict for {:?}",
                k,
                raw
            );
        }
    }
}

#[test]
fn shortening_rewrites_overlong_writes() {
    // A write spanning far past its only read's finish is re-timed to
    // finish just below it; the verdict is unchanged.
    let mut raw = RawHistory::new();
    raw.write(Value(1), Time(0), Time(1_000));
    raw.read(Value(1), Time(10), Time(20));
    assert!(reference_k_atomic(&raw.ops, 1), "reference accepts the raw history");
    let h = raw.into_history().unwrap();
    let w = &h.ops()[0];
    let r = &h.ops()[1];
    assert!(w.finish < r.finish, "write must be shortened below the read finish");
    assert!(ExhaustiveSearch::new(1).verify(&h).is_k_atomic());
}

#[test]
fn shortening_is_idempotent() {
    let h = kav_workloads::random_k_atomic(kav_workloads::RandomHistoryConfig {
        ops: 300,
        k: 2,
        seed: 8,
        ..Default::default()
    });
    let again = h.to_raw().into_history().unwrap();
    assert_eq!(h.to_raw(), again.to_raw());
}
