//! Kill-and-resume must be invisible to verdicts: a streaming audit that
//! is checkpointed at an arbitrary point, "crashed" (all in-flight state
//! discarded), serialized through JSON and resumed must finish with
//! reports identical to the uninterrupted audit — on property-generated
//! multi-key streams, at any shard count, across multi-hop snapshot
//! chains. This suite is part of the acceptance gate for the
//! checkpoint/resume subsystem.

use k_atomicity::history::ndjson::StreamRecord;
use k_atomicity::verify::{
    Fzf, GenK, PipelineConfig, PipelineOutput, PipelineSnapshot, StreamPipeline,
};
use k_atomicity::workloads::{
    deep_stale_stream, streaming_workload, DeepStaleConfig, StreamingWorkloadConfig,
};
use proptest::prelude::*;

fn push_all(pipeline: &mut StreamPipeline, records: &[StreamRecord]) {
    for record in records {
        pipeline.push(record.key, record.op());
    }
}

fn uninterrupted(records: &[StreamRecord], config: PipelineConfig) -> PipelineOutput {
    let mut pipeline = StreamPipeline::new(Fzf, config);
    push_all(&mut pipeline, records);
    pipeline.finish()
}

/// Snapshots after `cut` records, "crashes", and resumes through a JSON
/// roundtrip (the exact on-disk path) with `resume_shards` workers.
fn kill_and_resume(
    records: &[StreamRecord],
    config: PipelineConfig,
    cut: usize,
    resume_shards: usize,
    prefix_verified: bool,
) -> PipelineOutput {
    let mut first = StreamPipeline::new(Fzf, config);
    push_all(&mut first, &records[..cut]);
    let json = serde_json::to_string(&first.snapshot()).expect("snapshots serialize");
    drop(first); // the crash: worker threads and buffers are discarded
    let snapshot: PipelineSnapshot =
        serde_json::from_str(&json).expect("checkpoints parse back");
    let resume_config = PipelineConfig { shards: resume_shards, ..config };
    let mut resumed = StreamPipeline::resume(Fzf, resume_config, &snapshot, prefix_verified)
        .expect("own snapshots resume");
    push_all(&mut resumed, &records[cut..]);
    resumed.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline guarantee: killing an audit at any point and resuming
    /// from its checkpoint yields byte-for-byte the uninterrupted per-key
    /// reports — counters, statistics and verdicts — even when the resumed
    /// pipeline uses a different shard count.
    #[test]
    fn kill_and_resume_agrees_with_uninterrupted(
        seed in 0u64..2000,
        keys in 1u64..6,
        shards in 1usize..4,
        resume_shards in 1usize..4,
        window in 8usize..48,
        cut_permille in 0usize..=1000,
    ) {
        let records = streaming_workload(StreamingWorkloadConfig {
            keys,
            ops_per_key: 40,
            k: 2,
            seed,
            ..Default::default()
        });
        let config = PipelineConfig { shards, window, ..Default::default() };
        let baseline = uninterrupted(&records, config);
        let cut = records.len() * cut_permille / 1000;
        let output = kill_and_resume(&records, config, cut, resume_shards, true);
        prop_assert_eq!(&output.keys, &baseline.keys);
        prop_assert_eq!(&output.errors, &baseline.errors);
    }

    /// Snapshot chains compose: two kill/resume hops land on the same
    /// reports as zero or one.
    #[test]
    fn snapshot_chains_compose(
        seed in 0u64..1000,
        first_cut in 0usize..=100,
        second_cut in 0usize..=100,
    ) {
        let records = streaming_workload(StreamingWorkloadConfig {
            keys: 3,
            ops_per_key: 50,
            k: 2,
            seed,
            ..Default::default()
        });
        let config = PipelineConfig { shards: 2, window: 16, ..Default::default() };
        let baseline = uninterrupted(&records, config);

        let a = records.len() * first_cut / 100;
        let b = a + (records.len() - a) * second_cut / 100;
        let mut pipeline = StreamPipeline::new(Fzf, config);
        push_all(&mut pipeline, &records[..a]);
        let hop1 = serde_json::to_string(&pipeline.snapshot()).unwrap();
        drop(pipeline);
        let snapshot: PipelineSnapshot = serde_json::from_str(&hop1).unwrap();
        let mut pipeline = StreamPipeline::resume(Fzf, config, &snapshot, true).unwrap();
        push_all(&mut pipeline, &records[a..b]);
        let hop2 = serde_json::to_string(&pipeline.snapshot()).unwrap();
        drop(pipeline);
        let snapshot: PipelineSnapshot = serde_json::from_str(&hop2).unwrap();
        let mut pipeline = StreamPipeline::resume(Fzf, config, &snapshot, true).unwrap();
        push_all(&mut pipeline, &records[b..]);
        let output = pipeline.finish();
        prop_assert_eq!(&output.keys, &baseline.keys);
        prop_assert_eq!(&output.errors, &baseline.errors);
    }

    /// An unverified resume (e.g. from a non-seekable source) never
    /// upgrades or downgrades soundness the wrong way: every key that
    /// would certify YES reports UNKNOWN instead, and no key changes its
    /// violation status.
    #[test]
    fn unverified_resume_degrades_yes_keys_to_unknown(
        seed in 0u64..1000,
        cut_percent in 0usize..=100,
    ) {
        let records = streaming_workload(StreamingWorkloadConfig {
            keys: 4,
            ops_per_key: 40,
            k: 2,
            seed,
            ..Default::default()
        });
        let config = PipelineConfig { shards: 2, window: 16, ..Default::default() };
        let baseline = uninterrupted(&records, config);
        let cut = records.len() * cut_percent / 100;
        let output = kill_and_resume(&records, config, cut, 2, false);
        prop_assert_eq!(output.keys.len(), baseline.keys.len());
        for ((key, tainted), (base_key, clean)) in output.keys.iter().zip(&baseline.keys) {
            prop_assert_eq!(key, base_key);
            prop_assert!(tainted.resumed_uncertified, "key {}: {}", key, tainted);
            match clean.k_atomic() {
                Some(true) | None => prop_assert_eq!(
                    tainted.k_atomic(), None, "key {}: {}", key, tainted
                ),
                Some(false) => prop_assert_eq!(
                    tainted.k_atomic(), Some(false), "key {}: {}", key, tainted
                ),
            }
            // Everything except certifiability is untouched.
            prop_assert_eq!(tainted.ops, clean.ops);
            prop_assert_eq!(tainted.violations, clean.violations);
            prop_assert_eq!(tainted.horizon_breaches, clean.horizon_breaches);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill-and-resume at general k: a genk audit of a deep-stale stream
    /// (true staleness 3) checkpointed at any cut resumes to byte-identical
    /// per-key reports, at k = 3 and across the staleness cliff at k = 2.
    #[test]
    fn kill_and_resume_at_k_three(
        seed in 0u64..500,
        cut_percent in 0usize..=100,
        resume_shards in 1usize..4,
        k in 2u64..=3,
    ) {
        let records = deep_stale_stream(DeepStaleConfig {
            keys: 3,
            ops_per_key: 40,
            k: 3,
            seed,
            ..Default::default()
        });
        let config = PipelineConfig { shards: 2, window: 24, ..Default::default() };
        let verifier = GenK::new(k);

        let mut pipeline = StreamPipeline::new(verifier, config);
        push_all(&mut pipeline, &records);
        let baseline = pipeline.finish();

        let cut = records.len() * cut_percent / 100;
        let mut first = StreamPipeline::new(verifier, config);
        push_all(&mut first, &records[..cut]);
        let json = serde_json::to_string(&first.snapshot()).expect("snapshots serialize");
        drop(first);
        let snapshot: PipelineSnapshot = serde_json::from_str(&json).expect("checkpoints parse");
        prop_assert_eq!(&snapshot.algo, "genk");
        prop_assert_eq!(snapshot.k, k);
        let resume_config = PipelineConfig { shards: resume_shards, ..config };
        let mut resumed = StreamPipeline::resume(verifier, resume_config, &snapshot, true)
            .expect("own snapshots resume");
        push_all(&mut resumed, &records[cut..]);
        let output = resumed.finish();
        prop_assert_eq!(&output.keys, &baseline.keys);
        prop_assert_eq!(&output.errors, &baseline.errors);
        // And the verdicts themselves honour the cliff: NO at k = 2
        // survives any cut, YES at k = 3 only ever degrades to UNKNOWN.
        for (key, report) in &output.keys {
            match k {
                2 => prop_assert_eq!(report.k_atomic(), Some(false), "key {}: {}", key, report),
                _ => prop_assert!(report.k_atomic() != Some(false), "key {}: {}", key, report),
            }
        }
    }

    /// A genk snapshot must not resume under a different verifier or k.
    #[test]
    fn genk_snapshots_reject_mismatched_resumes(seed in 0u64..200) {
        let records = deep_stale_stream(DeepStaleConfig {
            keys: 2,
            ops_per_key: 30,
            k: 3,
            seed,
            ..Default::default()
        });
        let config = PipelineConfig { shards: 2, window: 16, ..Default::default() };
        let mut pipeline = StreamPipeline::new(GenK::new(3), config);
        push_all(&mut pipeline, &records[..records.len() / 2]);
        let snapshot = pipeline.snapshot();
        prop_assert!(StreamPipeline::resume(GenK::new(4), config, &snapshot, true).is_err());
        prop_assert!(StreamPipeline::resume(Fzf, config, &snapshot, true).is_err());
        prop_assert!(StreamPipeline::resume(GenK::new(3), config, &snapshot, true).is_ok());
        pipeline.finish();
    }
}

/// A gap segment that *escalates to the constrained search* must survive a
/// checkpoint hop: the verdict of an escalated window is a search result,
/// not a bound, and resuming mid-stream must reproduce it bit-for-bit.
#[test]
fn escalated_gap_segments_survive_checkpoint_hops() {
    use k_atomicity::history::{HistoryBuilder, Operation, Time, Value};

    // The straddling gadget (forced lower bound 2, witness upper bound 4,
    // true k = 4), time-shifted per repetition; in finish order, ready to
    // stream. At k = 3 every window containing it must escalate and
    // refute.
    let gadget = |base: u64, v0: u64| -> Vec<Operation> {
        vec![
            Operation::write(Value(v0), Time(base), Time(base + 100)),
            Operation::write(Value(v0 + 1), Time(base + 2), Time(base + 102)),
            Operation::write(Value(v0 + 2), Time(base + 4), Time(base + 104)),
            Operation::write(Value(v0 + 3), Time(base + 110), Time(base + 120)),
            Operation::read(Value(v0), Time(base + 122), Time(base + 130)),
            Operation::read(Value(v0 + 2), Time(base + 132), Time(base + 140)),
            Operation::read(Value(v0 + 1), Time(base + 142), Time(base + 150)),
        ]
    };

    // Sanity: this shape really exercises the escalation tier at k = 3.
    let sanity = {
        let mut b = HistoryBuilder::new();
        for op in gadget(0, 1) {
            let (s, f) = (op.start.as_u64(), op.finish.as_u64());
            b = if op.is_write() {
                b.write(op.value.0, s, f)
            } else {
                b.read(op.value.0, s, f)
            };
        }
        b.build().unwrap()
    };
    let (verdict, report) = GenK::new(3).verify_detailed(&sanity);
    assert!(report.escalated, "the gadget must reach the search: {report:?}");
    assert!(!verdict.is_k_atomic(), "true k is 4");

    // Six gadgets on one key (42 records); window 14 puts two gadgets in
    // each sealed segment, so every segment's NO comes from escalation.
    let records: Vec<StreamRecord> = (0..6u64)
        .flat_map(|i| {
            gadget(1000 * i, 10 * i + 1)
                .into_iter()
                .map(|op| StreamRecord::new(7, op))
        })
        .collect();
    let config = PipelineConfig { shards: 2, window: 14, ..Default::default() };
    let verifier = GenK::new(3);

    let mut pipeline = StreamPipeline::new(verifier, config);
    push_all(&mut pipeline, &records);
    let baseline = pipeline.finish();
    let (_, report) = baseline.keys.iter().find(|(key, _)| *key == 7).expect("key 7").clone();
    assert_eq!(report.k_atomic(), Some(false), "escalated windows refute: {report}");
    assert!(report.segments >= 2, "the stream must span several windows: {report}");

    // Kill and resume at cuts that land before, inside (mid-gadget,
    // mid-window) and after escalated segments.
    for cut in [0, 5, 14, 17, 21, 30, 40, records.len()] {
        let mut first = StreamPipeline::new(verifier, config);
        push_all(&mut first, &records[..cut]);
        let json = serde_json::to_string(&first.snapshot()).expect("snapshots serialize");
        drop(first); // the crash
        let snapshot: PipelineSnapshot =
            serde_json::from_str(&json).expect("checkpoints parse");
        let mut resumed = StreamPipeline::resume(verifier, config, &snapshot, true)
            .expect("own snapshots resume");
        push_all(&mut resumed, &records[cut..]);
        let output = resumed.finish();
        assert_eq!(&output.keys, &baseline.keys, "cut at {cut}");
        assert_eq!(&output.errors, &baseline.errors, "cut at {cut}");
    }
}

/// A fault-schedule audit must survive a crash of the *auditor* while the
/// *store under audit* is itself faulting: the partition-heal scenario
/// (replica 0 cut off for most of the run, then a second partition after
/// heal) is streamed through a genk pipeline that is killed and resumed at
/// cuts straddling the heal boundary. Reports must be byte-identical to
/// the uninterrupted audit, and the partition's NO verdict must survive
/// every cut — including an unverified resume.
#[test]
fn fault_schedule_audits_resume_across_partition_heal_boundaries() {
    use k_atomicity::sim::scenario;

    let run = scenario("partition-heal", 3)
        .expect("known scenario")
        .run()
        .expect("matrix scenarios validate");
    let records = run.records;
    let config = PipelineConfig { shards: 2, window: 24, ..Default::default() };
    let verifier = GenK::new(run.manifest.k_bound);

    let mut pipeline = StreamPipeline::new(verifier, config);
    push_all(&mut pipeline, &records);
    let baseline = pipeline.finish();
    // The scenario genuinely bites at this seed: the partition-era
    // staleness refutes k_bound somewhere, so the cut-stability below is
    // exercising a real NO, not a vacuous stream.
    assert!(
        baseline.keys.iter().any(|(_, r)| r.k_atomic() == Some(false)),
        "partition-heal seed 3 must refute k = {}",
        run.manifest.k_bound
    );

    // Cut indices straddling the heal instant (24 ms into the run): the
    // first record recorded after heal, its neighbours, plus the extremes.
    let heal = records
        .iter()
        .position(|r| r.finish.as_u64() >> 20 >= 24_000)
        .unwrap_or(records.len());
    assert!(
        heal > 0 && heal < records.len(),
        "the stream must span the heal boundary (heal index {heal})"
    );
    for cut in [0, heal - 1, heal, (heal + 1).min(records.len()), records.len()] {
        let mut first = StreamPipeline::new(verifier, config);
        push_all(&mut first, &records[..cut]);
        let json = serde_json::to_string(&first.snapshot()).expect("snapshots serialize");
        drop(first); // the auditor crash, mid-partition-history
        let snapshot: PipelineSnapshot =
            serde_json::from_str(&json).expect("checkpoints parse");
        let mut resumed = StreamPipeline::resume(verifier, config, &snapshot, true)
            .expect("own snapshots resume");
        push_all(&mut resumed, &records[cut..]);
        let output = resumed.finish();
        assert_eq!(&output.keys, &baseline.keys, "cut at {cut} (heal at {heal})");
        assert_eq!(&output.errors, &baseline.errors, "cut at {cut}");
    }

    // An unverified resume exactly at the heal boundary keeps every NO.
    let mut first = StreamPipeline::new(verifier, config);
    push_all(&mut first, &records[..heal]);
    let snapshot = first.snapshot();
    drop(first);
    let mut resumed = StreamPipeline::resume(verifier, config, &snapshot, false)
        .expect("own snapshots resume");
    push_all(&mut resumed, &records[heal..]);
    let tainted = resumed.finish();
    for ((key, t), (_, b)) in tainted.keys.iter().zip(&baseline.keys) {
        if b.k_atomic() == Some(false) {
            assert_eq!(
                t.k_atomic(),
                Some(false),
                "key {key}: NO must survive an unverified resume at the heal"
            );
        }
    }
}

/// The on-disk delta chain is equivalent to full snapshots: an audit
/// that checkpoints through [`CheckpointWriter`] with a short delta
/// cadence, is killed at checkpoints landing before, on and between
/// full-snapshot boundaries, and resumes from the resolved file —
/// through a second kill-and-resume hop, each hop re-reading the NDJSON
/// prefix with a *different* decoder than wrote the checkpoint — must
/// finish with reports byte-identical to the uninterrupted audit.
#[test]
fn delta_checkpoint_files_resume_across_kill_boundaries() {
    use k_atomicity::history::fxhash::Fingerprint;
    use k_atomicity::history::ndjson;
    use k_atomicity::verify::{read_checkpoint, CheckpointWriter, SourcePosition};

    let records = streaming_workload(StreamingWorkloadConfig {
        keys: 3,
        ops_per_key: 40,
        k: 2,
        seed: 11,
        ..Default::default()
    });
    let config = PipelineConfig { shards: 2, window: 16, ..Default::default() };
    let baseline = uninterrupted(&records, config);

    // The stream as its on-disk NDJSON bytes: the checkpoint fingerprints
    // must match what a prefix re-read would produce, whichever decoder
    // performs it.
    let doc: String = records.iter().map(|r| ndjson::to_line(r) + "\n").collect();
    let dir = std::env::temp_dir().join("kav_delta_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("audit.ckpt");
    let path = path.to_str().unwrap();

    // Checkpoint every 4 records with a full snapshot only every 3rd
    // write, so kills at records 12/24/36 land on delta-resolved state
    // (writes 3, 6, 9 — the chain is base + deltas at two of the three).
    let drive = |from: usize, until: usize, version: u64| {
        let mut reference = ndjson::Reader::with_fingerprint(doc.as_bytes(), Fingerprint::new());
        let mut zero_copy =
            ndjson::SliceReader::with_fingerprint(doc.as_bytes(), Fingerprint::new());
        let mut pipeline = if from == 0 {
            StreamPipeline::new(Fzf, config)
        } else {
            let checkpoint = read_checkpoint(path).expect("checkpoint reads back");
            assert!(checkpoint.deltas.is_empty(), "read_checkpoint resolves deltas");
            assert_eq!(checkpoint.source.lines, from as u64);
            // Alternate which decoder re-proves the prefix — the hop is
            // only sound because both produce the same fingerprint chain.
            let replayed = if version.is_multiple_of(2) {
                reference.skip_raw_lines(from as u64).unwrap();
                reference.fingerprint()
            } else {
                zero_copy.skip_raw_lines(from as u64).unwrap();
                zero_copy.fingerprint()
            };
            assert_eq!(
                replayed,
                Some(checkpoint.source.fingerprint),
                "prefix fingerprint must verify on either decoder"
            );
            StreamPipeline::resume(Fzf, config, &checkpoint.pipeline, true)
                .expect("own checkpoints resume")
        };
        let mut writer = CheckpointWriter::starting_at(path, version).delta_every(3);
        let mut fp = Fingerprint::new();
        for (i, record) in records.iter().enumerate().take(until) {
            let line = ndjson::to_line(record) + "\n";
            fp.update(line.as_bytes());
            if i < from {
                continue; // already audited before the kill
            }
            pipeline.push(record.key, record.op());
            if (i + 1) % 4 == 0 {
                let source = SourcePosition {
                    lines: (i + 1) as u64,
                    fingerprint: fp.value(),
                    malformed: 0,
                    malformed_samples: Vec::new(),
                };
                writer.write(source, pipeline.snapshot()).expect("checkpoints write");
            }
        }
        (pipeline, writer.version())
    };

    for (first_kill, second_kill) in [(12, 24), (4, 36), (24, 28), (36, 40)] {
        let (pipeline, v1) = drive(0, first_kill, 0);
        drop(pipeline); // the first crash; only the checkpoint file survives
        let (pipeline, v2) = drive(first_kill, second_kill, v1);
        drop(pipeline); // the second crash, mid delta chain
        let (pipeline, _) = drive(second_kill, records.len(), v2);
        let output = pipeline.finish();
        assert_eq!(&output.keys, &baseline.keys, "kills at {first_kill}/{second_kill}");
        assert_eq!(&output.errors, &baseline.errors, "kills at {first_kill}/{second_kill}");
    }
    std::fs::remove_file(path).ok();
}

/// Deterministic spot check that a snapshot is stable: snapshotting twice
/// without pushes yields identical bytes, and resume restores ops_routed.
#[test]
fn snapshots_are_deterministic_and_restore_position() {
    let records = streaming_workload(StreamingWorkloadConfig {
        keys: 3,
        ops_per_key: 30,
        k: 2,
        seed: 9,
        ..Default::default()
    });
    let config = PipelineConfig { shards: 2, window: 16, ..Default::default() };
    let mut pipeline = StreamPipeline::new(Fzf, config);
    push_all(&mut pipeline, &records[..records.len() / 2]);
    let first = serde_json::to_string(&pipeline.snapshot()).unwrap();
    let second = serde_json::to_string(&pipeline.snapshot()).unwrap();
    assert_eq!(first, second, "probing must not perturb state");
    let snapshot: PipelineSnapshot = serde_json::from_str(&first).unwrap();
    assert_eq!(snapshot.ops_routed, (records.len() / 2) as u64);
    assert_eq!(snapshot.algo, "fzf");
    assert_eq!(snapshot.k, 2);
    let resumed = StreamPipeline::resume(Fzf, config, &snapshot, true).unwrap();
    assert_eq!(resumed.ops_routed(), (records.len() / 2) as u64);
    resumed.finish();
    pipeline.finish();
}

// ---------------------------------------------------------------------------
// Fleet kill-and-rebalance: a worker process dying mid-audit must be as
// invisible as a single-process kill-and-resume — the coordinator hands the
// dead worker's ranges to survivors from the last acknowledged checkpoint
// plus its replay buffer, and the merged report stays byte-identical. When
// the replay chain is NOT re-feedable, YES must degrade to UNKNOWN (sticky)
// while proven violations survive: soundness is never traded for liveness.
// ---------------------------------------------------------------------------

mod fleet {
    use super::*;
    use k_atomicity::history::frame::KeyRange;
    use k_atomicity::verify::{
        fleet_verdict, worker_loop, FleetConfig, FleetCoordinator, FleetSummary, GenK,
        ModelId, Verifier, WorkerLink,
    };
    use std::net::Shutdown;
    use std::os::unix::net::UnixStream;
    use std::thread::JoinHandle;

    /// A killable in-process worker: shutting down the kept socket clone is
    /// the in-process analogue of SIGKILL — the worker loop dies instantly,
    /// taking all unacknowledged state with it, and the coordinator sees
    /// only a dead transport.
    struct Worker {
        kill: UnixStream,
        handle: JoinHandle<()>,
    }

    impl Worker {
        fn kill(&self) {
            self.kill.shutdown(Shutdown::Both).expect("socket shutdown");
        }
    }

    fn spawn_workers<V: Verifier + Clone + Send + 'static>(
        verifier: V,
        workers: usize,
    ) -> (Vec<WorkerLink>, Vec<Worker>) {
        let mut links = Vec::with_capacity(workers);
        let mut spawned = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (coordinator_side, worker_side) = UnixStream::pair().expect("socketpair");
            let kill = worker_side.try_clone().expect("clone for kill");
            let v = verifier.clone();
            let handle = std::thread::spawn(move || {
                let input = worker_side.try_clone().expect("clone worker socket");
                let _ = worker_loop(v, input, worker_side);
            });
            links.push(WorkerLink {
                writer: Box::new(coordinator_side.try_clone().expect("clone link")),
                reader: Box::new(coordinator_side),
            });
            spawned.push(Worker { kill, handle });
        }
        (links, spawned)
    }

    fn fleet_config<V: Verifier>(verifier: &V, window: usize, replay_cap: usize) -> FleetConfig {
        FleetConfig {
            algo: verifier.name().to_owned(),
            model: ModelId::KAtomic,
            k: verifier.k(),
            window,
            horizon: None,
            worker_shards: 2,
            batch: 5,
            checkpoint_every: 0,
            replay_cap,
        }
    }

    /// Drives `records` through a fleet, checkpointing at `snapshot_at` and
    /// shutting down `victim` at `kill_at` (record indices).
    #[allow(clippy::too_many_arguments)]
    fn run_with_kill<V: Verifier + Clone + Send + 'static>(
        verifier: V,
        workers: usize,
        window: usize,
        replay_cap: usize,
        records: &[StreamRecord],
        snapshot_at: Option<usize>,
        kill_at: usize,
        victim: usize,
    ) -> (PipelineOutput, FleetSummary) {
        let (links, spawned) = spawn_workers(verifier.clone(), workers);
        let mut fleet =
            FleetCoordinator::new(fleet_config(&verifier, window, replay_cap), links)
                .expect("fleet start");
        for (i, record) in records.iter().enumerate() {
            if snapshot_at == Some(i) {
                fleet.snapshot_fleet().expect("mid-stream fleet checkpoint");
            }
            if i == kill_at {
                spawned[victim].kill();
            }
            fleet.push(record.key, record.op()).expect("push survives a dead worker");
        }
        let (output, summary) = fleet.finish().expect("fleet finish");
        for worker in spawned {
            let _ = worker.handle.join();
        }
        (output, summary)
    }

    /// SIGKILL-equivalent cuts at 25/50/75%: the re-assigned shard resumes
    /// from the last acked checkpoint plus the replay, and the fleet report
    /// is byte-identical to the undisturbed single-process audit — the
    /// pre-kill violations (true staleness 3, audited at k = 2) included.
    #[test]
    fn kill_and_rebalance_is_invisible_at_any_cut() {
        let records = deep_stale_stream(DeepStaleConfig {
            keys: 4,
            ops_per_key: 40,
            k: 3,
            seed: 17,
            ..Default::default()
        });
        let verifier = GenK::new(2);
        let window = 24;
        let mut baseline_pipe = StreamPipeline::new(
            verifier,
            PipelineConfig { shards: 2, window, ..Default::default() },
        );
        push_all(&mut baseline_pipe, &records);
        let baseline = baseline_pipe.finish();
        assert_eq!(baseline.all_k_atomic(), Some(false), "staleness 3 refutes k = 2");

        for cut_percent in [25usize, 50, 75] {
            let cut = records.len() * cut_percent / 100;
            let (output, summary) = run_with_kill(
                verifier,
                3,
                window,
                1 << 20,
                &records,
                Some(cut / 2),
                cut,
                cut_percent % 3, // vary which worker dies
            );
            assert_eq!(output.keys, baseline.keys, "kill at {cut_percent}%");
            assert_eq!(output.errors, baseline.errors, "kill at {cut_percent}%");
            assert!(summary.hand_offs >= 1, "the death must actually rebalance");
            assert_eq!(
                summary.uncertified_hand_offs, 0,
                "an intact replay chain keeps the hand-off certified"
            );
            assert_eq!(output.all_k_atomic(), Some(false), "pre-kill violations survive");
        }
    }

    /// When the replay buffer overflowed before the kill, the hand-off is
    /// unverifiable: the dead worker's keys are tainted (YES → UNKNOWN,
    /// sticky), no violation is ever invented, and untouched shards keep
    /// their certified YES.
    #[test]
    fn unverifiable_hand_off_degrades_yes_to_unknown() {
        let records = deep_stale_stream(DeepStaleConfig {
            keys: 8,
            ops_per_key: 30,
            k: 2,
            seed: 5,
            ..Default::default()
        });
        let verifier = GenK::new(3); // the stream is 2-atomic: all YES
        let window = 24;
        let mut baseline_pipe = StreamPipeline::new(
            verifier,
            PipelineConfig { shards: 2, window, ..Default::default() },
        );
        push_all(&mut baseline_pipe, &records);
        let baseline = baseline_pipe.finish();
        assert_eq!(baseline.all_k_atomic(), Some(true), "the undisturbed audit certifies");

        let kill_at = records.len() * 3 / 4;
        let (output, summary) =
            run_with_kill(verifier, 2, window, 8, &records, None, kill_at, 0);
        assert!(summary.hand_offs >= 1);
        assert!(
            summary.uncertified_hand_offs >= 1,
            "an overflowed replay cannot certify the hand-off"
        );
        assert!(
            summary.frames_dropped > 0,
            "auditing across the gap could invent violations, so frames must drop"
        );
        assert_eq!(
            fleet_verdict(&output, &summary),
            None,
            "a lost replay never certifies YES"
        );
        // With no acked checkpoint, the dead range's audit is gone
        // entirely; what remains must be the untouched shard's certified
        // YES — and nothing may have been promoted to a violation.
        let dead_range = KeyRange::partition(2)[0];
        let mut certified = 0usize;
        for (key, report) in &output.keys {
            assert_ne!(report.k_atomic(), Some(false), "a gap must not invent a violation");
            if !dead_range.contains(*key) && report.k_atomic() == Some(true) {
                certified += 1;
            }
        }
        assert!(certified >= 1, "untouched shards keep their certified YES");
    }

    /// Violations already captured in an acknowledged fleet checkpoint
    /// survive even an unverifiable hand-off: the tainted resume keeps NO
    /// while refusing to certify anything else.
    #[test]
    fn acked_checkpoint_survives_an_unverifiable_hand_off() {
        let records = deep_stale_stream(DeepStaleConfig {
            keys: 4,
            ops_per_key: 40,
            k: 3,
            seed: 23,
            ..Default::default()
        });
        let verifier = GenK::new(2);
        let window = 24;
        let snapshot_at = records.len() * 3 / 5;
        let kill_at = records.len() * 9 / 10;

        // Which keys have a proven NO by the checkpoint cut? Those must
        // survive the broken hand-off no matter what.
        let mut prefix_pipe = StreamPipeline::new(
            verifier,
            PipelineConfig { shards: 2, window, ..Default::default() },
        );
        push_all(&mut prefix_pipe, &records[..snapshot_at]);
        let prefix = prefix_pipe.finish();
        let dead_range = KeyRange::partition(2)[0];
        let proven: Vec<u64> = prefix
            .keys
            .iter()
            .filter(|(key, report)| {
                dead_range.contains(*key) && report.k_atomic() == Some(false)
            })
            .map(|(key, _)| *key)
            .collect();
        assert!(
            !proven.is_empty(),
            "seed must plant a violation on the dead range before the checkpoint"
        );

        // Replay cap 8 overflows in the 30% of the stream after the
        // checkpoint, so the hand-off resumes the acked snapshot unverified.
        let (output, summary) =
            run_with_kill(verifier, 2, window, 8, &records, Some(snapshot_at), kill_at, 0);
        assert!(summary.uncertified_hand_offs >= 1, "the hand-off must be the broken kind");
        assert_ne!(
            fleet_verdict(&output, &summary),
            Some(true),
            "a broken hand-off bars certification"
        );
        for key in proven {
            let (_, report) = output
                .keys
                .iter()
                .find(|(k, _)| *k == key)
                .expect("checkpointed keys stay in the report");
            assert_eq!(
                report.k_atomic(),
                Some(false),
                "key {key}: a checkpointed violation survives the broken hand-off"
            );
        }
    }
}
