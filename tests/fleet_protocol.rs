//! Adversarial wire-protocol tests: a coordinator or worker fed a
//! malformed, truncated, misrouted or replayed stream must fail loudly
//! with a diagnostic ([`ProtocolError`] → exit 2 in the CLI) and **never**
//! produce a wrong verdict. Every rejection path of the framing layer is
//! exercised from outside, speaking raw bytes.
//!
//! [`ProtocolError`]: k_atomicity::verify::ProtocolError

use k_atomicity::history::frame::{encode_routed_batch, FrameBatch, KeyRange};
use k_atomicity::history::{Operation, Time, Value};
use k_atomicity::verify::protocol::{
    expect_preamble, read_message, tag, write_message, Assignment, RangeSnapshot,
    SnapshotReply, COORDINATOR_MAGIC, WORKER_MAGIC,
};
use k_atomicity::verify::{
    worker_loop, FleetConfig, FleetCoordinator, Fzf, ModelId, PipelineConfig, ProtocolError,
    StreamPipeline, WorkerLink,
};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Worker-side rejections: a test driver plays coordinator over raw bytes.
// ---------------------------------------------------------------------------

/// Spawns one `worker_loop` (Fzf, k = 2) and returns the driver-side
/// socket plus the handle resolving to the loop's exit.
fn spawn_worker() -> (UnixStream, JoinHandle<Result<(), ProtocolError>>) {
    let (driver, worker) = UnixStream::pair().expect("socketpair");
    let handle = std::thread::spawn(move || {
        let input = worker.try_clone().expect("clone");
        worker_loop(Fzf, input, worker)
    });
    (driver, handle)
}

/// Completes the preamble exchange as a well-behaved coordinator would.
fn handshake(driver: &mut UnixStream) {
    driver.write_all(&COORDINATOR_MAGIC).unwrap();
    driver.flush().unwrap();
    expect_preamble(driver, WORKER_MAGIC).expect("worker announces itself");
}

/// Sends a valid assignment of `range` to the worker.
fn assign(driver: &mut UnixStream, range: KeyRange) {
    let assignment = Assignment {
        range,
        algo: "fzf".to_owned(),
        model: ModelId::KAtomic,
        k: 2,
        window: 8,
        horizon: None,
        shards: 1,
        batch: 4,
        snapshot: None,
        prefix_verified: true,
    };
    let payload = serde_json::to_string(&assignment).unwrap().into_bytes();
    write_message(driver, tag::ASSIGN, &payload).unwrap();
    driver.flush().unwrap();
}

/// Drains the worker's ERROR reply (its best-effort diagnostic before
/// dying) and asserts the diagnostic mentions `needle`.
fn expect_error_reply(driver: &mut UnixStream, needle: &str) {
    let (got, payload) = read_message(driver).expect("a diagnostic, not silence");
    assert_eq!(got, tag::ERROR, "the worker must flag the fault");
    let text = String::from_utf8_lossy(&payload).into_owned();
    assert!(
        text.contains(needle),
        "diagnostic {text:?} should mention {needle:?}"
    );
}

fn one_frame_batch(key: u64) -> FrameBatch {
    let mut batch = FrameBatch::new();
    batch.push(key, &Operation::write(Value(1), Time(0), Time(5)));
    batch
}

#[test]
fn worker_rejects_a_bad_preamble() {
    let (mut driver, handle) = spawn_worker();
    driver.write_all(b"KAVX9999").unwrap();
    driver.flush().unwrap();
    let exit = handle.join().unwrap();
    assert!(
        matches!(exit, Err(ProtocolError::BadPreamble { .. })),
        "got {exit:?}"
    );
    drop(driver);
}

#[test]
fn worker_rejects_a_batch_with_bad_magic() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    assign(&mut driver, KeyRange::ALL);
    let mut payload = encode_routed_batch(KeyRange::ALL, &one_frame_batch(1));
    payload[..4].copy_from_slice(b"XXXX");
    write_message(&mut driver, tag::BATCH, &payload).unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "magic");
    assert!(matches!(handle.join().unwrap(), Err(ProtocolError::Batch(_))));
}

#[test]
fn worker_rejects_truncated_frames() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    assign(&mut driver, KeyRange::ALL);
    // Chop the payload mid-frame: the declared length no longer matches.
    let full = encode_routed_batch(KeyRange::ALL, &one_frame_batch(1));
    write_message(&mut driver, tag::BATCH, &full[..full.len() - 7]).unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "truncated");
    assert!(matches!(handle.join().unwrap(), Err(ProtocolError::Batch(_))));
}

#[test]
fn worker_rejects_keys_routed_outside_the_range() {
    let (low, high) = KeyRange::ALL.split();
    let high_key = (0u64..).find(|k| high.contains(*k)).unwrap();

    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    assign(&mut driver, low);
    // A batch *tagged* with the assigned range but smuggling a foreign
    // key: the frame-level validation must catch the mismatch before
    // the key is ever audited under the wrong shard.
    let payload = encode_routed_batch(low, &one_frame_batch(high_key));
    write_message(&mut driver, tag::BATCH, &payload).unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "outside");
    assert!(matches!(handle.join().unwrap(), Err(ProtocolError::Batch(_))));
}

#[test]
fn worker_rejects_batches_for_unassigned_ranges() {
    let (low, high) = KeyRange::ALL.split();
    let high_key = (0u64..).find(|k| high.contains(*k)).unwrap();
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    assign(&mut driver, low);
    // Correctly self-consistent batch, but for a range nobody gave us.
    let mut batch = FrameBatch::new();
    batch.push(high_key, &Operation::write(Value(1), Time(0), Time(5)));
    let payload = encode_routed_batch(high, &batch);
    write_message(&mut driver, tag::BATCH, &payload).unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "does not own");
    assert!(matches!(
        handle.join().unwrap(),
        Err(ProtocolError::UnassignedRange(_))
    ));
}

#[test]
fn worker_rejects_duplicate_assignments() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    assign(&mut driver, KeyRange::ALL);
    assign(&mut driver, KeyRange::ALL);
    expect_error_reply(&mut driver, "twice");
    assert!(matches!(
        handle.join().unwrap(),
        Err(ProtocolError::DuplicateAssignment(_))
    ));
}

#[test]
fn worker_rejects_a_mismatched_verifier() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    let assignment = Assignment {
        range: KeyRange::ALL,
        algo: "genk".to_owned(), // the worker runs fzf
        model: ModelId::KAtomic,
        k: 2,
        window: 8,
        horizon: None,
        shards: 1,
        batch: 4,
        snapshot: None,
        prefix_verified: true,
    };
    let payload = serde_json::to_string(&assignment).unwrap().into_bytes();
    write_message(&mut driver, tag::ASSIGN, &payload).unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "genk");
    assert!(matches!(
        handle.join().unwrap(),
        Err(ProtocolError::VerifierMismatch(_))
    ));
}

#[test]
fn worker_rejects_unknown_tags_and_oversized_lengths() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    write_message(&mut driver, 250, b"whatever").unwrap();
    driver.flush().unwrap();
    expect_error_reply(&mut driver, "tag");
    assert!(matches!(handle.join().unwrap(), Err(ProtocolError::UnknownTag(_))));

    // A corrupt length prefix must be refused before allocation.
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    driver.write_all(&[tag::BATCH]).unwrap();
    driver.write_all(&u32::MAX.to_le_bytes()).unwrap();
    driver.flush().unwrap();
    let exit = handle.join().unwrap();
    assert!(matches!(exit, Err(ProtocolError::Oversized(_))), "got {exit:?}");
}

#[test]
fn worker_treats_a_torn_message_as_a_transport_fault() {
    let (mut driver, handle) = spawn_worker();
    handshake(&mut driver);
    // A message header promising more bytes than ever arrive.
    driver.write_all(&[tag::BATCH]).unwrap();
    driver.write_all(&100u32.to_le_bytes()).unwrap();
    driver.write_all(b"short").unwrap();
    driver.flush().unwrap();
    drop(driver); // EOF mid-message
    let exit = handle.join().unwrap();
    assert!(
        matches!(exit, Err(ProtocolError::Io(_))),
        "mid-message EOF is a torn transport, got {exit:?}"
    );
}

// ---------------------------------------------------------------------------
// Coordinator-side rejections: a fake worker plays back corrupt replies.
// ---------------------------------------------------------------------------

/// A scripted fake worker: answers the preamble, consumes assignments and
/// replies to every SNAPSHOT with the snapshots produced by `reply` —
/// allowing replayed versions and mis-tagged partitions.
fn scripted_worker(
    mut reply: impl FnMut(u64) -> SnapshotReply + Send + 'static,
) -> (WorkerLink, JoinHandle<()>) {
    let (coordinator_side, mut worker_side) = UnixStream::pair().expect("socketpair");
    let handle = std::thread::spawn(move || {
        let mut probes = 0u64;
        if expect_preamble(&mut worker_side, COORDINATOR_MAGIC).is_err() {
            return;
        }
        worker_side.write_all(&WORKER_MAGIC).unwrap();
        worker_side.flush().unwrap();
        loop {
            let Ok((got, _payload)) = read_message(&mut worker_side) else {
                return;
            };
            match got {
                tag::ASSIGN | tag::BATCH => {}
                tag::SNAPSHOT => {
                    probes += 1;
                    let payload = serde_json::to_string(&reply(probes)).unwrap().into_bytes();
                    write_message(&mut worker_side, tag::SNAPSHOT_REPLY, &payload).unwrap();
                    worker_side.flush().unwrap();
                }
                _ => return,
            }
        }
    });
    let link = WorkerLink {
        writer: Box::new(coordinator_side.try_clone().expect("clone")),
        reader: Box::new(coordinator_side),
    };
    (link, handle)
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        algo: "fzf".to_owned(),
        model: ModelId::KAtomic,
        k: 2,
        window: 8,
        horizon: None,
        worker_shards: 1,
        batch: 4,
        checkpoint_every: 0,
        replay_cap: 1 << 16,
    }
}

/// A well-formed per-range snapshot for [`KeyRange::ALL`].
fn tagged_snapshot() -> k_atomicity::verify::PipelineSnapshot {
    let mut pipeline = StreamPipeline::new(
        Fzf,
        PipelineConfig { shards: 1, window: 8, ..Default::default() },
    );
    pipeline.set_partition(Some(KeyRange::ALL));
    pipeline.snapshot()
}

#[test]
fn coordinator_rejects_replayed_snapshot_versions() {
    // The fake worker answers every probe with version 1: the second
    // probe's reply must be refused (a replayed cut cannot be trusted).
    let (link, handle) = scripted_worker(|_probes| SnapshotReply {
        version: 1,
        ranges: vec![RangeSnapshot { range: KeyRange::ALL, snapshot: tagged_snapshot() }],
    });
    let mut fleet = FleetCoordinator::new(fleet_config(), vec![link]).expect("fleet start");
    fleet.snapshot_fleet().expect("the first probe is fine");
    let err = fleet.snapshot_fleet().expect_err("a replayed version must be refused");
    assert!(
        matches!(err, ProtocolError::SnapshotVersion { got: 1, last: 1 }),
        "got {err:?}"
    );
    assert!(
        !err.to_string().is_empty(),
        "the refusal carries a diagnostic for exit 2"
    );
    drop(fleet);
    handle.join().unwrap();
}

#[test]
fn coordinator_rejects_mistagged_partition_snapshots() {
    // Replies are versioned correctly but the snapshot claims a foreign
    // partition: certification discipline must refuse the merge.
    let (link, handle) = scripted_worker(|probes| {
        let mut snapshot = tagged_snapshot();
        snapshot.partition = Some(KeyRange::ALL.split().1); // wrong tag
        SnapshotReply {
            version: probes,
            ranges: vec![RangeSnapshot { range: KeyRange::ALL, snapshot }],
        }
    });
    let mut fleet = FleetCoordinator::new(fleet_config(), vec![link]).expect("fleet start");
    let err = fleet.snapshot_fleet().expect_err("a mis-tagged snapshot must be refused");
    assert!(matches!(err, ProtocolError::PartitionMismatch { .. }), "got {err:?}");
    drop(fleet);
    handle.join().unwrap();
}

#[test]
fn coordinator_rejects_replies_for_unowned_ranges() {
    let (link, handle) = scripted_worker(|probes| {
        let (low, _high) = KeyRange::ALL.split();
        let mut snapshot = tagged_snapshot();
        snapshot.partition = Some(low);
        SnapshotReply {
            version: probes,
            ranges: vec![RangeSnapshot { range: low, snapshot }], // owns ALL, reports low
        }
    });
    let mut fleet = FleetCoordinator::new(fleet_config(), vec![link]).expect("fleet start");
    let err = fleet.snapshot_fleet().expect_err("reporting foreign ranges must be refused");
    assert!(matches!(err, ProtocolError::UnassignedRange(_)), "got {err:?}");
    drop(fleet);
    handle.join().unwrap();
}

#[test]
fn coordinator_refuses_a_bad_worker_preamble() {
    let (coordinator_side, mut worker_side) = UnixStream::pair().expect("socketpair");
    let handle = std::thread::spawn(move || {
        let mut preamble = [0u8; 8];
        worker_side.read_exact(&mut preamble).unwrap();
        worker_side.write_all(b"NOTMAGIC").unwrap();
        worker_side.flush().unwrap();
    });
    let link = WorkerLink {
        writer: Box::new(coordinator_side.try_clone().expect("clone")),
        reader: Box::new(coordinator_side),
    };
    let err = FleetCoordinator::new(fleet_config(), vec![link])
        .err()
        .expect("a fleet must not start over a bad preamble");
    assert!(matches!(err, ProtocolError::BadPreamble { .. }), "got {err:?}");
    handle.join().unwrap();
}
