//! Targeted tests for the Lemma 4.2 case analysis — the subtlest part of
//! FZF's Stage 2. The lemma proves that within one chunk only `TF`
//! (forward writes by zone low endpoint) and `T'F` (first two swapped) can
//! be viable, by induction over two chain shapes:
//!
//! * **Case 1** — zone A ends *before* zone B ends (the middle chunk of
//!   Figure 3: FZ2/FZ3/FZ4);
//! * **Case 2** — zone A ends *after* zone B ends (the right chunk:
//!   FZ5/FZ6/FZ7).
//!
//! For each shape we build chains of three forward clusters, sweep the
//! probe read that decides viability, and check FZF against the exhaustive
//! oracle — plus the property-P configurations (three zones at a point, or
//! a zone overlapping more than two others) that the lemma excludes as
//! never 2-atomic.

use k_atomicity::history::HistoryBuilder;
use k_atomicity::verify::{
    check_witness, ConstrainedSearch, ExhaustiveSearch, Fzf, GenK, Verdict, Verifier,
};

fn agree(h: &k_atomicity::history::History, label: &str) -> bool {
    let fzf = Fzf.verify(h);
    let oracle = ExhaustiveSearch::new(2).verify(h);
    assert_eq!(
        fzf.is_k_atomic(),
        oracle.is_k_atomic(),
        "{label}: FZF and oracle disagree"
    );
    if let Verdict::KAtomic { witness } = &fzf {
        check_witness(h, witness, 2).unwrap_or_else(|e| panic!("{label}: bad witness: {e}"));
    }
    // The Lemma 4.2 chain shapes are exactly where naive witness orders
    // go wrong (only T'F is viable), so they gate the general-k sandwich
    // and the constrained escalation engine too — at k = 2 and at every
    // level up to 5.
    for k in 1..=5u64 {
        let oracle_k = ExhaustiveSearch::new(k).verify(h);
        let genk = GenK::with_gap_budget(k, None).verify(h);
        assert_eq!(
            genk.is_k_atomic(),
            oracle_k.is_k_atomic(),
            "{label}: GenK and oracle disagree at k = {k}"
        );
        if let Verdict::KAtomic { witness } = &genk {
            check_witness(h, witness, k)
                .unwrap_or_else(|e| panic!("{label}: bad genk witness at k = {k}: {e}"));
        }
        let constrained = ConstrainedSearch::new(k).verify(h);
        assert_eq!(
            constrained.is_k_atomic(),
            oracle_k.is_k_atomic(),
            "{label}: ConstrainedSearch and oracle disagree at k = {k}"
        );
        if let Verdict::KAtomic { witness } = &constrained {
            check_witness(h, witness, k).unwrap_or_else(|e| {
                panic!("{label}: bad constrained witness at k = {k}: {e}")
            });
        }
    }
    fzf.is_k_atomic()
}

/// Case 1 chain (A ends before B ends): zones A=[10,24], B=[12,30],
/// C=[25,50] — A∩B and B∩C nonempty, A∩C empty, no triple point.
#[test]
fn case1_chain_is_2_atomic() {
    let h = HistoryBuilder::new()
        .write(1, 0, 10) // wA
        .read(1, 24, 28) // rA: zone A = [10, 24]
        .write(2, 2, 12) // wB
        .read(2, 30, 36) // rB: zone B = [12, 30]
        .write(3, 4, 25) // wC
        .read(3, 50, 56) // rC: zone C = [25, 50]
        .build()
        .unwrap();
    assert!(agree(&h, "case1 base"), "plain Case 1 chain should be 2-atomic");
}

/// Case 1 with a probe read of A landing after wC finishes: the read needs
/// the write two slots back, which no candidate order allows.
#[test]
fn case1_with_deep_stale_probe_rejects() {
    let h = HistoryBuilder::new()
        .write(1, 0, 10)
        .read(1, 24, 28)
        .write(2, 2, 12)
        .read(2, 30, 36)
        .write(3, 4, 25)
        .read(3, 50, 56)
        // Probe: a read of A starting after both wB and wC finished, while
        // B's read is also pending — zone A stretches to [10, 26].
        .read(1, 26, 33)
        .build()
        .unwrap();
    // Whatever the verdict, FZF must match the oracle and certify it.
    agree(&h, "case1 probe");
}

/// Case 2 chain (A ends after B ends): the T'F = [wB, wA, wC] order is the
/// only viable one (TF gives A's late read separation 3).
#[test]
fn case2_chain_needs_the_swapped_order() {
    let h = HistoryBuilder::new()
        .write(10, 0, 10) // wA, zone A = [10, 40]
        .read(10, 40, 50) // rA
        .write(20, 2, 12) // wB, zone B = [12, 14]
        .read(20, 14, 22) // rB
        .write(30, 4, 30) // wC, zone C = [30, 32]
        .read(30, 32, 38) // rC
        .build()
        .unwrap();
    assert!(agree(&h, "case2"), "Case 2 chain is 2-atomic via T'F");
    let (_, report) = Fzf.verify_detailed(&h);
    assert_eq!(report.chunks, 1);
    assert!(report.orders_tested >= 2, "TF must fail first: {report:?}");
}

/// Property P, variant 1: three forward zones sharing a point — the lemma
/// says no viable order exists.
#[test]
fn three_zones_at_a_point_reject() {
    let h = HistoryBuilder::new()
        .write(1, 0, 10) // zone [10, 100]
        .read(1, 100, 110)
        .write(2, 2, 12) // zone [12, 30]
        .read(2, 30, 36)
        .write(3, 4, 14) // zone [14, 50]: point 15 lies in all three
        .read(3, 50, 56)
        .build()
        .unwrap();
    assert!(!agree(&h, "triple point"), "property P forces NO");
}

/// Property P, variant 2: one zone overlapping three others.
#[test]
fn zone_overlapping_three_others_rejects() {
    let h = HistoryBuilder::new()
        .write(1, 0, 10) // spine zone [10, 200]
        .read(1, 200, 210)
        // Three small disjoint forward zones inside the spine's span.
        .write(2, 2, 20)
        .read(2, 40, 46)
        .write(3, 50, 60)
        .read(3, 80, 86)
        .write(4, 90, 100)
        .read(4, 120, 126)
        .build()
        .unwrap();
    assert!(!agree(&h, "overlap three"), "a zone overlapping 3 others forces NO");
}

/// Longer chains: alternate Case 1 / Case 2 links and sweep the probe read
/// position; FZF must track the oracle at every offset.
#[test]
fn mixed_chains_with_swept_probe_agree_with_oracle() {
    let mut yes = 0;
    for probe_start in [13u64, 15, 17, 21, 26, 31, 41, 51] {
        let h = HistoryBuilder::new()
            .write(1, 0, 10)
            .read(1, 24, 29) // A = [10, 24]
            .write(2, 2, 12)
            .read(2, 34, 39) // B = [12, 34]
            .write(3, 4, 30)
            .read(3, 52, 57) // C = [30, 52]
            // The probe reads B's value from various positions.
            .read(2, probe_start, probe_start + 50)
            .build()
            .unwrap();
        yes += u32::from(agree(&h, &format!("probe@{probe_start}")));
    }
    // The sweep must exercise a YES outcome to be a meaningful test; the
    // exact verdict split is input-dependent — agreement is the point.
    assert!(yes > 0, "no YES case in the sweep");
}

/// The induction's base case: two-cluster chunks accept via TF or T'F
/// whenever the oracle does, across relative zone layouts.
#[test]
fn two_cluster_chunks_sweep() {
    for (b_write_end, b_read_start) in
        [(12u64, 14u64), (12, 22), (16, 18), (16, 30), (20, 26)]
    {
        let h = HistoryBuilder::new()
            .write(1, 0, 10)
            .read(1, 25, 35) // zone A = [10, 25]
            .write(2, 2, b_write_end)
            .read(2, b_read_start, 40 + b_read_start)
            .build()
            .unwrap();
        agree(&h, &format!("two-cluster B=[{b_write_end},{b_read_start}]"));
    }
}
