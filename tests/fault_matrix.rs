//! The fault-matrix soundness harness: every verifier path, driven over
//! every adversarial fault class, with the soundness discipline asserted
//! as executable properties.
//!
//! The `kav_sim` scenario matrix injects the four fault classes — clocks
//! beyond the declared skew bound, crash-recovery with write loss,
//! partition/heal cycles, and mid-run quorum reconfiguration — plus a
//! clean control and a combined storm, each with a ground-truth manifest
//! (seed, schedule, expected-verdict class). This harness replays the
//! recorded streams through the offline exact path (`smallest_k`), the
//! general-k verifier at k ∈ 1..=5, the streaming pipeline at several
//! windows and retirement horizons, and kill-and-resume across
//! checkpoints, asserting at every point:
//!
//! * **NO is sound everywhere**: a violation verdict agrees with the
//!   offline exact staleness of the recorded history, survives any stream
//!   cut, any horizon, and any resume — verified or not.
//! * **YES needs a certified chain**: a k-atomic verdict only ever appears
//!   with zero horizon breaches, zero orphaned reads, a verified resume
//!   chain, and an anomaly-free record whose true staleness is within k.
//! * **Damage degrades, never flips**: skew beyond the bound may corrupt
//!   the record (that is its point), but corrupt evidence produces
//!   UNKNOWN or a verdict *about the record* — never a certified YES.
//!
//! Runs on fixed seeds so CI failures reproduce exactly.

use k_atomicity::history::ndjson::StreamRecord;
use k_atomicity::history::repair;
use k_atomicity::sim::{scenario, scenario_matrix, ExpectedClass, ScenarioRun};
use k_atomicity::verify::{
    smallest_k, CausalVerifier, GenK, PipelineConfig, PipelineOutput, PipelineSnapshot,
    RegularVerifier, Staleness, StreamPipeline, Verdict, Verifier,
};

/// Fixed seeds: the matrix must bite (and stay sound) on every one of
/// these, so a CI failure is a deterministic repro, not a flake.
const SEEDS: &[u64] = &[1, 2, 3];

/// Search budget for exact offline staleness; the scenario histories are
/// small enough that this is effectively unbounded.
const GAP_BUDGET: u64 = 10_000_000;

/// Offline ground truth for one recorded per-key history.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Truth {
    /// Anomaly-free record with exact staleness `k`.
    Clean(u64),
    /// Anomaly-free record whose exact staleness exceeded the budget:
    /// at least `k` (never observed at `GAP_BUDGET`, handled for safety).
    CleanAtLeast(u64),
    /// The record itself contains anomalies — only clock damage can do
    /// this; every timestamp-honest fault class must keep records clean.
    Damaged,
}

/// Computes the offline ground truth of every key in a run.
fn truths(run: &ScenarioRun) -> Vec<(u64, Truth)> {
    let mut out: Vec<(u64, Truth)> = run
        .output
        .histories
        .iter()
        .map(|(key, raw)| {
            let truth = if raw.validate().is_clean() {
                let history = raw.clone().into_history().expect("clean records validate");
                match smallest_k(&history, Some(GAP_BUDGET)) {
                    Staleness::Exact(k) => Truth::Clean(k),
                    Staleness::AtLeast(k) => Truth::CleanAtLeast(k),
                }
            } else {
                Truth::Damaged
            };
            (*key, truth)
        })
        .collect();
    out.sort_by_key(|(key, _)| *key);
    out
}

fn truth_of(truths: &[(u64, Truth)], key: u64) -> Truth {
    truths.iter().find(|(k, _)| *k == key).map(|(_, t)| *t).expect("key exists")
}

fn push_all(pipeline: &mut StreamPipeline, records: &[StreamRecord]) {
    for record in records {
        pipeline.push(record.key, record.op());
    }
}

fn run_pipeline(records: &[StreamRecord], k: u64, config: PipelineConfig) -> PipelineOutput {
    let mut pipeline =
        StreamPipeline::new(GenK::with_gap_budget(k, Some(GAP_BUDGET)), config);
    push_all(&mut pipeline, records);
    pipeline.finish()
}

/// All scenario runs for one seed, with ground truths attached.
fn matrix(seed: u64) -> Vec<(ScenarioRun, Vec<(u64, Truth)>)> {
    scenario_matrix(seed)
        .iter()
        .map(|s| {
            let run = s.run().expect("matrix scenarios validate");
            let truths = truths(&run);
            (run, truths)
        })
        .collect()
}

/// Offline path × genk grid: on every anomaly-free record the general-k
/// verifier at k ∈ 1..=5 must agree with the exact staleness — no unsound
/// YES, no unsound NO, for any fault class. Damaged records may only come
/// from scenarios declared untrustworthy, and repair always salvages them.
#[test]
fn offline_genk_grid_agrees_with_ground_truth() {
    for &seed in SEEDS {
        for (run, truths) in matrix(seed) {
            let name = &run.manifest.name;
            for (key, truth) in &truths {
                match truth {
                    Truth::Damaged => {
                        assert_eq!(
                            run.manifest.expected,
                            ExpectedClass::Untrustworthy,
                            "{name} seed {seed}: only clock damage may corrupt the \
                             record, but key {key} has anomalies"
                        );
                        let raw = run
                            .output
                            .histories
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, raw)| raw.clone())
                            .expect("key exists");
                        let (salvaged, log) = repair(raw).expect("repair always salvages");
                        assert!(
                            !salvaged.is_empty() && !log.dropped.is_empty(),
                            "{name} seed {seed} key {key}: damaged record must lose \
                             something to repair"
                        );
                    }
                    Truth::Clean(true_k) | Truth::CleanAtLeast(true_k) => {
                        let exact = matches!(truth, Truth::Clean(_));
                        let history = run
                            .output
                            .histories
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, raw)| raw.clone().into_history().expect("clean"))
                            .expect("key exists");
                        for k in 1..=5u64 {
                            let verdict =
                                GenK::with_gap_budget(k, Some(GAP_BUDGET)).verify(&history);
                            match verdict {
                                Verdict::KAtomic { .. } => assert!(
                                    exact && k >= *true_k,
                                    "{name} seed {seed} key {key}: unsound YES at k={k}, \
                                     true staleness {true_k} (exact: {exact})"
                                ),
                                Verdict::NotKAtomic => assert!(
                                    k < *true_k || !exact,
                                    "{name} seed {seed} key {key}: unsound NO at k={k}, \
                                     true staleness {true_k}"
                                ),
                                Verdict::Inconclusive => {} // UNKNOWN is always sound
                                Verdict::Consistent => panic!(
                                    "{name} seed {seed} key {key}: k-atomic verifiers \
                                     must carry a witness, not a bare Consistent"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Streaming path × {windows, retirement horizons}: every verdict the
/// pipeline emits must be justified — YES needs a fully certified chain
/// on a record whose true staleness is within k; NO must match the
/// offline truth of clean records; damaged records never certify.
#[test]
fn stream_verdicts_are_sound_at_every_window_and_horizon() {
    let configs = [
        // Window beyond any per-key history: single-segment, full horizon.
        PipelineConfig { shards: 2, window: 256, ..Default::default() },
        // Many small windows with a tight retirement horizon: breaches and
        // orphans become likely — exactly what must degrade YES, not NO.
        PipelineConfig { shards: 3, window: 16, horizon: Some(16), ..Default::default() },
    ];
    for &seed in SEEDS {
        for (run, truths) in matrix(seed) {
            let name = &run.manifest.name;
            for k in [1u64, 3] {
                for config in configs {
                    let output = run_pipeline(&run.records, k, config);
                    for (key, report) in &output.keys {
                        let truth = truth_of(&truths, *key);
                        match report.k_atomic() {
                            Some(true) => {
                                assert_eq!(
                                    (report.horizon_breaches, report.orphaned_reads),
                                    (0, 0),
                                    "{name} seed {seed} key {key}: YES without a \
                                     certified chain at k={k}: {report}"
                                );
                                assert!(
                                    !report.resumed_uncertified,
                                    "{name} seed {seed} key {key}: YES from an \
                                     uncertified resume"
                                );
                                match truth {
                                    Truth::Clean(t) => assert!(
                                        t <= k,
                                        "{name} seed {seed} key {key}: unsound stream \
                                         YES at k={k}, true staleness {t}"
                                    ),
                                    Truth::CleanAtLeast(t) => assert!(
                                        t <= k,
                                        "{name} seed {seed} key {key}: stream YES at \
                                         k={k} but staleness is at least {t}"
                                    ),
                                    Truth::Damaged => panic!(
                                        "{name} seed {seed} key {key}: YES certified \
                                         from anomalous evidence"
                                    ),
                                }
                            }
                            Some(false) => {
                                // NO is a claim about the recorded data; on
                                // clean records that claim is exactly the
                                // offline truth. On damaged records it
                                // refutes the record, which is all an
                                // auditor may say — and is never a YES.
                                if let Truth::Clean(t) = truth {
                                    assert!(
                                        t > k,
                                        "{name} seed {seed} key {key}: unsound stream \
                                         NO at k={k}, true staleness {t}"
                                    );
                                }
                            }
                            None => {} // UNKNOWN is always sound
                        }
                    }
                }
            }
        }
    }
}

/// Checkpoint path: for every scenario, killing the audit at any cut and
/// resuming from the snapshot yields byte-identical reports (so NO
/// survives every cut), and an *unverified* resume degrades YES/UNKNOWN
/// to UNKNOWN while violations stay violations.
#[test]
fn verdicts_survive_kill_and_resume_at_any_cut() {
    let config = PipelineConfig { shards: 2, window: 24, ..Default::default() };
    let k = 3; // the general-k streaming path
    for &seed in SEEDS {
        for (run, _) in matrix(seed) {
            let name = &run.manifest.name;
            let baseline = run_pipeline(&run.records, k, config);
            for cut_permille in [0usize, 250, 500, 750, 1000] {
                let cut = run.records.len() * cut_permille / 1000;
                let verifier = GenK::with_gap_budget(k, Some(GAP_BUDGET));
                let mut first = StreamPipeline::new(verifier, config);
                push_all(&mut first, &run.records[..cut]);
                let json =
                    serde_json::to_string(&first.snapshot()).expect("snapshots serialize");
                drop(first); // the crash
                let snapshot: PipelineSnapshot =
                    serde_json::from_str(&json).expect("checkpoints parse");
                let mut resumed = StreamPipeline::resume(verifier, config, &snapshot, true)
                    .expect("own snapshots resume");
                push_all(&mut resumed, &run.records[cut..]);
                let output = resumed.finish();
                assert_eq!(
                    &output.keys, &baseline.keys,
                    "{name} seed {seed}: cut at {cut} changed a report"
                );
                assert_eq!(&output.errors, &baseline.errors, "{name} seed {seed}");
            }

            // Unverified resume at the midpoint: soundness may only move
            // downward (YES -> UNKNOWN), never flip.
            let cut = run.records.len() / 2;
            let verifier = GenK::with_gap_budget(k, Some(GAP_BUDGET));
            let mut first = StreamPipeline::new(verifier, config);
            push_all(&mut first, &run.records[..cut]);
            let snapshot = first.snapshot();
            drop(first);
            let mut resumed = StreamPipeline::resume(verifier, config, &snapshot, false)
                .expect("own snapshots resume");
            push_all(&mut resumed, &run.records[cut..]);
            let tainted = resumed.finish();
            assert_eq!(tainted.keys.len(), baseline.keys.len());
            for ((key, t), (_, b)) in tainted.keys.iter().zip(&baseline.keys) {
                assert!(t.resumed_uncertified, "{name} seed {seed} key {key}");
                match b.k_atomic() {
                    Some(false) => assert_eq!(
                        t.k_atomic(),
                        Some(false),
                        "{name} seed {seed} key {key}: NO did not survive an \
                         unverified resume"
                    ),
                    _ => assert_eq!(
                        t.k_atomic(),
                        None,
                        "{name} seed {seed} key {key}: uncertified resume must \
                         degrade to UNKNOWN"
                    ),
                }
            }
        }
    }
}

/// Model rows of the matrix: the pluggable regular and causal verifiers
/// driven through the same streaming pipeline over every fault class.
/// The simulator session-tags every recorded operation with its issuing
/// client, so the causal row exercises real session structure. The
/// discipline is the k-atomic one, per model:
///
/// * wide single-segment windows must reproduce the offline model
///   verdict exactly on clean records;
/// * tight windows may degrade to UNKNOWN, but a NO on a clean record
///   must match the offline model verdict, and a YES always needs a
///   certified chain on undamaged evidence.
#[test]
fn model_stream_verdicts_are_sound_on_the_fault_matrix() {
    // Each model's offline verdict on a clean per-key record.
    fn offline<V: Verifier>(verifier: &V, run: &ScenarioRun, key: u64) -> Option<bool> {
        let history = run
            .output
            .histories
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, raw)| raw.clone().into_history().expect("clean records validate"))
            .expect("key exists");
        verifier.verify(&history).decided()
    }

    fn check_model<V: Verifier + Copy + Send + 'static>(
        verifier: V,
        model: &str,
    ) -> (usize, usize) {
        // Window beyond any per-key history (streamed ≡ offline), then
        // small windows with a tight horizon (degradation pressure).
        let wide = PipelineConfig { shards: 2, window: 256, ..Default::default() };
        let tight =
            PipelineConfig { shards: 3, window: 16, horizon: Some(16), ..Default::default() };
        let (mut decided, mut refused) = (0usize, 0usize);
        for &seed in SEEDS {
            for (run, truths) in matrix(seed) {
                let name = &run.manifest.name;
                for config in [wide, tight] {
                    let single_segment = config.window >= 256;
                    let mut pipeline = StreamPipeline::new(verifier, config);
                    push_all(&mut pipeline, &run.records);
                    let output = pipeline.finish();
                    for (key, report) in &output.keys {
                        let clean = truth_of(&truths, *key) != Truth::Damaged;
                        match report.k_atomic() {
                            Some(true) => {
                                decided += 1;
                                assert_eq!(
                                    (report.horizon_breaches, report.orphaned_reads),
                                    (0, 0),
                                    "{name} seed {seed} key {key}: {model} YES \
                                     without a certified chain"
                                );
                                assert!(
                                    clean,
                                    "{name} seed {seed} key {key}: {model} YES \
                                     certified from anomalous evidence"
                                );
                                assert_ne!(
                                    offline(&verifier, &run, *key),
                                    Some(false),
                                    "{name} seed {seed} key {key}: unsound {model} \
                                     stream YES"
                                );
                            }
                            Some(false) => {
                                decided += 1;
                                refused += 1;
                                if clean {
                                    assert_eq!(
                                        offline(&verifier, &run, *key),
                                        Some(false),
                                        "{name} seed {seed} key {key}: unsound \
                                         {model} stream NO"
                                    );
                                }
                            }
                            None => {}
                        }
                        if single_segment && clean {
                            assert_eq!(
                                report.k_atomic(),
                                offline(&verifier, &run, *key),
                                "{name} seed {seed} key {key}: single-segment \
                                 {model} verdict diverged from offline"
                            );
                        }
                    }
                }
            }
        }
        (decided, refused)
    }

    let (regular_decided, _) = check_model(RegularVerifier, "regular");
    let (causal_decided, _) = check_model(CausalVerifier::new(), "causal");
    // Non-vacuity: both rows must actually decide something on the
    // fixed seeds, or the assertions above are dead code.
    assert!(regular_decided > 0, "regular row never decided on seeds {SEEDS:?}");
    assert!(causal_decided > 0, "causal row never decided on seeds {SEEDS:?}");
}

/// The clean control is the YES side of the matrix: strict quorums with no
/// faults must stay within the declared bound on every key *and* certify
/// through the streaming path — guarding against a harness that only ever
/// sees NO/UNKNOWN and would miss an unsound-YES regression.
#[test]
fn clean_control_stays_atomic_and_certifies() {
    for &seed in SEEDS {
        let run = scenario("clean-strict", seed).expect("control exists").run().unwrap();
        assert_eq!(run.manifest.expected, ExpectedClass::Atomic);
        assert_eq!(run.manifest.timeouts, 0, "a clean run never arms timeouts");
        assert_eq!(run.manifest.lost_writes, 0);
        for (key, truth) in truths(&run) {
            match truth {
                Truth::Clean(t) => assert!(
                    t <= run.manifest.k_bound,
                    "seed {seed} key {key}: control exceeded its bound ({t})"
                ),
                other => panic!("seed {seed} key {key}: control must be clean: {other:?}"),
            }
        }
        let output = run_pipeline(&run.records, run.manifest.k_bound, PipelineConfig {
            shards: 2,
            window: 256,
            ..Default::default()
        });
        for (key, report) in &output.keys {
            assert_eq!(
                report.k_atomic(),
                Some(true),
                "seed {seed} key {key}: the clean control must certify YES: {report}"
            );
        }
    }
}

/// The damaging classes must actually damage: on the fixed seeds, each
/// timestamp-honest fault scenario produces staleness beyond its declared
/// k_bound somewhere (otherwise the NO-soundness assertions above are
/// vacuously green), and each clock-fault scenario corrupts some record.
#[test]
fn every_fault_class_bites_on_the_fixed_seeds() {
    for name in ["crash-recovery", "partition-heal", "reconfig"] {
        let mut bites = false;
        for &seed in SEEDS {
            let run = scenario(name, seed).expect("known scenario").run().unwrap();
            for (_, truth) in truths(&run) {
                if let Truth::Clean(t) | Truth::CleanAtLeast(t) = truth {
                    bites |= t > run.manifest.k_bound;
                }
            }
        }
        assert!(bites, "{name} never exceeded its k_bound on seeds {SEEDS:?}");
    }
    for name in ["skew-beyond-bound", "fault-storm"] {
        let mut damaged = false;
        for &seed in SEEDS {
            let run = scenario(name, seed).expect("known scenario").run().unwrap();
            damaged |= truths(&run).iter().any(|(_, t)| *t == Truth::Damaged);
        }
        assert!(damaged, "{name} never corrupted a record on seeds {SEEDS:?}");
    }
}
