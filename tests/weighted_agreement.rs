//! Properties tying §V to the rest of the paper: unit-weight k-WAV is
//! exactly k-AV, and the Figure-5 reduction decides bin packing.

use k_atomicity::history::{History, Operation, RawHistory, Time, Value, Weight};
use k_atomicity::verify::{ExhaustiveSearch, Fzf, Verifier};
use k_atomicity::weighted::{extract_packing, reduce_bin_packing, BinPacking, WkavInstance};
use proptest::prelude::*;

fn arb_weighted_history() -> impl Strategy<Value = History> {
    let writes = prop::collection::vec((0u64..300, 1u64..50, 1u32..5), 1..6);
    let reads = prop::collection::vec((any::<prop::sample::Index>(), 0u64..80, 1u64..40), 0..6);
    (writes, reads).prop_map(|(writes, reads)| {
        let mut raw = RawHistory::new();
        for (i, &(start, len, weight)) in writes.iter().enumerate() {
            raw.push(Operation::weighted_write(
                Value(i as u64 + 1),
                Time(start),
                Time(start + len),
                Weight(weight),
            ));
        }
        for (which, offset, len) in reads {
            let w = which.index(writes.len());
            let start = writes[w].0 + offset;
            raw.push(Operation::read(Value(w as u64 + 1), Time(start), Time(start + len)));
        }
        raw.make_endpoints_distinct();
        raw.into_history().expect("anomaly-free")
    })
}

/// Strips weights down to 1, keeping intervals and values.
fn unit_weighted(h: &History) -> History {
    let raw: RawHistory = h
        .to_raw()
        .into_iter()
        .map(|mut op| {
            op.weight = Weight::UNIT;
            op
        })
        .collect();
    raw.into_history().expect("weights do not affect validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unit_weight_kwav_equals_k_av(h in arb_weighted_history()) {
        let unit = unit_weighted(&h);
        // k = 2 of the weighted rule (unit weights) is 2-AV.
        let wkav = WkavInstance::new(unit.clone(), 2).decide(None).is_k_atomic();
        let fzf = Fzf.verify(&unit).is_k_atomic();
        prop_assert_eq!(wkav, fzf);
    }

    #[test]
    fn weighted_verdicts_are_monotone_in_k(h in arb_weighted_history()) {
        let mut previous = false;
        let total = h.total_write_weight();
        for k in 1..=total.min(8) {
            let now = WkavInstance::new(h.clone(), k).decide(None).is_k_atomic();
            prop_assert!(!previous || now, "YES at {} but NO at {}", k - 1, k);
            previous = now;
        }
        // The total write weight always suffices (finish-order witness).
        prop_assert!(WkavInstance::new(h.clone(), total).decide(None).is_k_atomic());
    }

    #[test]
    fn raising_any_weight_never_helps(h in arb_weighted_history(), bump in 1u32..4) {
        // Heavier writes only make the constraint harder: if the bumped
        // instance is solvable, the original was too.
        let k = 4u64;
        let bumped: RawHistory = h
            .to_raw()
            .into_iter()
            .map(|mut op| {
                if op.is_write() {
                    op.weight = Weight(op.weight.as_u32() + bump);
                }
                op
            })
            .collect();
        let bumped = bumped.into_history().unwrap();
        let heavy = WkavInstance::new(bumped, k).decide(None).is_k_atomic();
        let light = WkavInstance::new(h.clone(), k).decide(None).is_k_atomic();
        prop_assert!(!heavy || light);
    }

    #[test]
    fn reduction_decides_bin_packing(
        sizes in prop::collection::vec(1u64..6, 1..5),
        bins in 1usize..4,
        capacity in 3u64..8,
    ) {
        let bp = BinPacking::new(sizes, bins, capacity).expect("positive sizes");
        let feasible = bp.solve_exact().is_some();
        let instance = reduce_bin_packing(&bp);
        match instance.decide(None) {
            k_atomicity::verify::Verdict::KAtomic { witness } => {
                prop_assert!(feasible, "k-WAV YES on infeasible packing");
                let assignment = extract_packing(&bp, &instance.history, witness.as_slice())
                    .expect("witness covers instance");
                prop_assert!(bp.is_feasible_assignment(&assignment));
            }
            k_atomicity::verify::Verdict::NotKAtomic => prop_assert!(!feasible),
            k_atomicity::verify::Verdict::Inconclusive => {
                return Err(TestCaseError::fail("unbounded search was inconclusive"))
            }
            k_atomicity::verify::Verdict::Consistent => {
                return Err(TestCaseError::fail(
                    "k-WAV oracle must carry a witness, not a bare Consistent",
                ))
            }
        }
    }

    #[test]
    fn oracle_consistency_between_weight_representations(h in arb_weighted_history()) {
        // Expressing a weight-w write as w is NOT the same as w unit
        // writes (the reduction needs genuine weights); but the oracle must
        // at least respect that the weighted verdict with k = total weight
        // is YES while k = 0 is NO when reads exist.
        if h.num_reads() > 0 {
            prop_assert!(!ExhaustiveSearch::new(0).verify(&h).is_k_atomic());
        }
    }
}
