//! On-disk format stability: the JSON schema is part of the public
//! contract (the `kav` CLI and any external tooling depend on it).

use k_atomicity::history::{json, Operation, RawHistory, Time, Value, Weight};
use proptest::prelude::*;

#[test]
fn fixture_parses_and_is_stable() {
    // A hand-written fixture in the documented schema.
    let fixture = r#"{
        "ops": [
            {"kind": "write", "value": 1, "start": 0, "finish": 10},
            {"kind": "write", "value": 2, "start": 12, "finish": 20, "weight": 5},
            {"kind": "read",  "value": 1, "start": 22, "finish": 30}
        ]
    }"#;
    let raw = json::from_json_str(fixture).unwrap();
    assert_eq!(raw.len(), 3);
    assert_eq!(raw.ops[0], Operation::write(Value(1), Time(0), Time(10)));
    assert_eq!(raw.ops[1].weight, Weight(5));
    assert!(raw.ops[2].is_read());

    // Re-serialising and re-parsing is the identity.
    let reparsed = json::from_json_str(&json::to_json_string(&raw)).unwrap();
    assert_eq!(raw, reparsed);

    // And the fixture validates into a history.
    let h = raw.into_history().unwrap();
    assert_eq!(h.len(), 3);
}

#[test]
fn unknown_kind_is_rejected() {
    let bad = r#"{"ops":[{"kind":"scan","value":1,"start":0,"finish":1}]}"#;
    assert!(json::from_json_str(bad).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip_is_lossless(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..50, 0u64..1000, 1u64..100, 1u32..9, 0u64..4),
            0..40,
        )
    ) {
        let raw: RawHistory = ops
            .into_iter()
            .map(|(is_read, value, start, len, weight, client)| Operation {
                kind: if is_read {
                    k_atomicity::history::OpKind::Read
                } else {
                    k_atomicity::history::OpKind::Write
                },
                value: Value(value),
                start: Time(start),
                finish: Time(start + len),
                weight: Weight(weight),
                client,
            })
            .collect();
        let roundtripped = json::from_json_str(&json::to_json_string(&raw)).unwrap();
        prop_assert_eq!(raw, roundtripped);
    }
}
