//! End-to-end pipeline: simulate a replicated store, serialise the per-key
//! histories to JSON, read them back, verify, and cross-check the verdicts
//! — the full workflow a storage operator would run via the `kav` CLI.

use k_atomicity::history::json;
use k_atomicity::sim::{LatencyModel, SimConfig, Simulation};
use k_atomicity::verify::{
    check_witness, smallest_k, Fzf, GkOneAv, Lbt, Staleness, Verdict, Verifier,
};

#[test]
fn simulate_serialize_verify_roundtrip() {
    let output = Simulation::new(SimConfig {
        replicas: 3,
        read_quorum: 2,
        write_quorum: 2,
        clients: 5,
        ops_per_client: 40,
        keys: 2,
        seed: 21,
        ..SimConfig::default()
    })
    .unwrap()
    .run();

    let dir = std::env::temp_dir().join("kav_sim_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();

    for (key, raw) in output.histories {
        let path = dir.join(format!("key-{key}.json"));
        json::write_history(&path, &raw).unwrap();
        let reread = json::read_history(&path).unwrap();
        assert_eq!(raw, reread, "JSON roundtrip must be lossless");
        std::fs::remove_file(path).ok();

        let h = reread.into_history().unwrap();
        match Fzf.verify(&h) {
            Verdict::KAtomic { witness } => check_witness(&h, &witness, 2).unwrap(),
            Verdict::NotKAtomic => panic!("strict quorums should stay 2-atomic"),
            Verdict::Inconclusive => unreachable!(),
            Verdict::Consistent => unreachable!("k-atomic verdicts carry witnesses"),
        }
        assert_eq!(
            Lbt::new().verify(&h).is_k_atomic(),
            Fzf.verify(&h).is_k_atomic(),
            "LBT and FZF must agree on simulated histories"
        );
    }
}

#[test]
fn lagging_sloppy_store_exceeds_atomicity_but_stays_measurable() {
    let output = Simulation::new(SimConfig {
        replicas: 5,
        read_quorum: 1,
        write_quorum: 1,
        clients: 6,
        ops_per_client: 30,
        apply_lag: LatencyModel::Uniform { lo: 5_000, hi: 50_000 },
        seed: 3,
        ..SimConfig::default()
    })
    .unwrap()
    .run();

    let mut any_violation = false;
    for (_, raw) in output.histories {
        let h = raw.into_history().unwrap();
        let atomic = GkOneAv.verify(&h).is_k_atomic();
        if !atomic {
            any_violation = true;
            // The measured staleness is well-defined and bounded by the
            // finish-order upper bound.
            match smallest_k(&h, Some(500_000)) {
                Staleness::Exact(k) => assert!(k >= 2),
                Staleness::AtLeast(k) => assert!(k >= 2),
            }
        }
    }
    assert!(any_violation, "a lagging sloppy store should violate atomicity");
}

#[test]
fn histories_from_different_keys_are_independent() {
    // k-atomicity is local (§II-B): verifying key A's history is oblivious
    // to key B. Concretely: simulating 4 keys yields 4 separately valid
    // histories whose op counts sum to the total.
    let output = Simulation::new(SimConfig {
        keys: 4,
        clients: 6,
        ops_per_client: 25,
        seed: 17,
        ..SimConfig::default()
    })
    .unwrap()
    .run();
    let total: usize = output.histories.iter().map(|(_, h)| h.len()).sum();
    assert_eq!(total as u64, output.stats.reads + output.stats.writes + 4);
    for (_, raw) in output.histories {
        assert!(raw.validate().is_clean());
    }
}
