//! Scale smoke tests: the quasilinear verifiers handle tens of thousands
//! of operations in debug builds, agree with each other, and their
//! witnesses check out. (Criterion benches measure the asymptotics; these
//! tests pin down correctness at scale.)

use k_atomicity::verify::{check_witness, verify_batch, Fzf, GkOneAv, Lbt, Verifier};
use k_atomicity::workloads::{random_k_atomic, staircase, RandomHistoryConfig};

#[test]
fn verifiers_agree_on_20k_operations() {
    let h = random_k_atomic(RandomHistoryConfig {
        ops: 20_000,
        k: 2,
        spread: 4,
        seed: 77,
        ..Default::default()
    });
    let fzf = Fzf.verify(&h);
    let lbt = Lbt::new().verify(&h);
    assert!(fzf.is_k_atomic() && lbt.is_k_atomic());
    check_witness(&h, fzf.witness().unwrap(), 2).unwrap();
    check_witness(&h, lbt.witness().unwrap(), 2).unwrap();
}

#[test]
fn staircase_2000_steps_verifies_everywhere() {
    let h = staircase(2_000);
    assert_eq!(h.len(), 4_000);
    let gk = GkOneAv.verify(&h);
    check_witness(&h, gk.witness().expect("staircase is 1-atomic"), 1).unwrap();
    let fzf = Fzf.verify(&h);
    check_witness(&h, fzf.witness().expect("hence 2-atomic"), 2).unwrap();
    let lbt = Lbt::new().verify(&h);
    check_witness(&h, lbt.witness().expect("LBT agrees"), 2).unwrap();
}

#[test]
fn batch_verification_over_many_registers() {
    let batch: Vec<_> = (0..24)
        .map(|seed| {
            random_k_atomic(RandomHistoryConfig {
                ops: 1_500,
                k: if seed % 2 == 0 { 1 } else { 2 },
                seed,
                ..Default::default()
            })
        })
        .collect();
    let verdicts = verify_batch(&Fzf, &batch, 8);
    assert_eq!(verdicts.len(), 24);
    for (h, v) in batch.iter().zip(&verdicts) {
        assert!(v.is_k_atomic());
        check_witness(h, v.witness().unwrap(), 2).unwrap();
    }
}

#[test]
fn k1_only_histories_stay_atomic_at_scale() {
    let h = random_k_atomic(RandomHistoryConfig {
        ops: 30_000,
        k: 1,
        spread: 2,
        seed: 3,
        ..Default::default()
    });
    let gk = GkOneAv.verify(&h);
    assert!(gk.is_k_atomic());
    check_witness(&h, gk.witness().unwrap(), 1).unwrap();
}
