//! The central soundness property of the reproduction: on arbitrary
//! anomaly-free histories, every polynomial verifier agrees with the
//! exhaustive oracle, all four LBT configurations agree with FZF, and every
//! YES verdict carries an independently checkable witness.

use k_atomicity::history::{History, Operation, RawHistory, Time, Value};
use k_atomicity::verify::{
    check_witness, smallest_k, staleness_lower_bound, staleness_upper_bound, CandidateOrder,
    ExhaustiveSearch, Fzf, GenK, GkOneAv, Lbt, LbtConfig, SearchStrategy, Staleness, Verdict,
    Verifier,
};
use k_atomicity::workloads::{deep_stale, DeepStaleConfig};
use proptest::prelude::*;

/// Generates an arbitrary anomaly-free history: up to 7 writes with random
/// intervals and up to 8 reads, each referencing some write and starting no
/// earlier than that write starts (so no read precedes its dictating
/// write). Endpoint collisions are repaired toward concurrency.
fn arb_history() -> impl Strategy<Value = History> {
    let writes = prop::collection::vec((0u64..500, 1u64..80), 1..7);
    let reads = prop::collection::vec((any::<prop::sample::Index>(), 0u64..150, 1u64..60), 0..8);
    (writes, reads).prop_map(|(writes, reads)| {
        let mut raw = RawHistory::new();
        for (i, &(start, len)) in writes.iter().enumerate() {
            raw.push(Operation::write(
                Value(i as u64 + 1),
                Time(start),
                Time(start + len),
            ));
        }
        for (which, offset, len) in reads {
            let w = which.index(writes.len());
            let (wstart, _) = writes[w];
            let start = wstart + offset;
            raw.push(Operation::read(
                Value(w as u64 + 1),
                Time(start),
                Time(start + len),
            ));
        }
        raw.make_endpoints_distinct();
        raw.into_history().expect("constructed histories are anomaly-free")
    })
}

fn lbt_configs() -> Vec<Lbt> {
    let mut out = Vec::new();
    for strategy in [SearchStrategy::Naive, SearchStrategy::IterativeDeepening] {
        for candidate_order in [CandidateOrder::IncreasingFinish, CandidateOrder::DecreasingFinish]
        {
            out.push(Lbt::with_config(LbtConfig { strategy, candidate_order }));
        }
    }
    out
}

fn checked(history: &History, verdict: &Verdict, k: u64, who: &str) -> bool {
    match verdict {
        Verdict::KAtomic { witness } => {
            check_witness(history, witness, k)
                .unwrap_or_else(|e| panic!("{who} produced a bad witness: {e}"));
            true
        }
        Verdict::NotKAtomic => false,
        Verdict::Inconclusive => panic!("{who} must be decisive here"),
        Verdict::Consistent => panic!("{who} must carry a witness, not a bare Consistent"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gk_matches_oracle_at_k1(h in arb_history()) {
        let gk = checked(&h, &GkOneAv.verify(&h), 1, "gk");
        let oracle = checked(&h, &ExhaustiveSearch::new(1).verify(&h), 1, "oracle-k1");
        prop_assert_eq!(gk, oracle);
    }

    #[test]
    fn lbt_fzf_and_oracle_agree_at_k2(h in arb_history()) {
        let oracle = checked(&h, &ExhaustiveSearch::new(2).verify(&h), 2, "oracle-k2");
        let fzf = checked(&h, &Fzf.verify(&h), 2, "fzf");
        prop_assert_eq!(fzf, oracle, "FZF disagrees with the oracle");
        for lbt in lbt_configs() {
            let got = checked(&h, &lbt.verify(&h), 2, "lbt");
            prop_assert_eq!(got, oracle, "LBT {:?} disagrees", lbt.config());
        }
    }

    /// The general-k gate: with an unbounded escalation budget, the GenK
    /// bound sandwich must agree with the exhaustive oracle at every
    /// level — on arbitrary anomaly-free histories — and its YES verdicts
    /// must carry checkable witnesses.
    #[test]
    fn genk_matches_oracle_for_k_one_to_five(h in arb_history()) {
        for k in 1..=5u64 {
            let genk = checked(&h, &GenK::with_gap_budget(k, None).verify(&h), k, "genk");
            let oracle = checked(&h, &ExhaustiveSearch::new(k).verify(&h), k, "oracle");
            prop_assert_eq!(genk, oracle, "genk disagrees at k = {}", k);
        }
    }

    /// GenK's bounds are individually sound on arbitrary histories: the
    /// forced-separation lower bound never exceeds the true smallest k,
    /// and the constructive upper bound never undercuts it.
    #[test]
    fn genk_bounds_sandwich_the_true_k(h in arb_history()) {
        let Staleness::Exact(true_k) = smallest_k(&h, None) else {
            return Err(TestCaseError::fail("unbounded smallest_k must be exact"));
        };
        prop_assert!(staleness_lower_bound(&h) <= true_k, "lower bound over-claims");
        prop_assert!(staleness_upper_bound(&h) >= true_k, "upper bound under-claims");
    }

    /// Deep-stale workloads (true staleness forced to k) are the shapes
    /// that actually exercise the k >= 3 path: genk must agree with the
    /// oracle around the staleness cliff.
    #[test]
    fn genk_matches_oracle_on_deep_stale_histories(
        seed in 0u64..500,
        k in 1u64..=5,
    ) {
        let h = deep_stale(DeepStaleConfig {
            ops_per_key: 20,
            k,
            gadget_every: 8,
            seed,
            ..Default::default()
        });
        prop_assert!(h.len() <= k_atomicity::verify::MAX_SEARCH_OPS);
        for probe in [k.saturating_sub(1).max(1), k, k + 1] {
            let genk = checked(&h, &GenK::with_gap_budget(probe, None).verify(&h), probe, "genk");
            let oracle = checked(&h, &ExhaustiveSearch::new(probe).verify(&h), probe, "oracle");
            prop_assert_eq!(genk, oracle, "k = {}, probe = {}", k, probe);
        }
        prop_assert_eq!(smallest_k(&h, None), Staleness::Exact(k));
    }

    #[test]
    fn monotonicity_in_k(h in arb_history()) {
        // k-atomicity is monotone: YES at k implies YES at k+1.
        let mut previous = false;
        for k in 1..=4u64 {
            let now = checked(&h, &ExhaustiveSearch::new(k).verify(&h), k, "oracle");
            prop_assert!(!previous || now, "YES at k={} but NO at k={}", k - 1, k);
            previous = now;
        }
    }

    #[test]
    fn smallest_k_is_the_oracle_threshold(h in arb_history()) {
        let result = smallest_k(&h, None);
        let Staleness::Exact(k) = result else {
            return Err(TestCaseError::fail("unbounded smallest_k must be exact"));
        };
        prop_assert!(checked(&h, &ExhaustiveSearch::new(k).verify(&h), k, "oracle"));
        if k > 1 {
            prop_assert!(
                !checked(&h, &ExhaustiveSearch::new(k - 1).verify(&h), k - 1, "oracle"),
                "history already {}-atomic",
                k - 1
            );
        }
        prop_assert!(k <= staleness_upper_bound(&h), "upper bound must dominate");
    }

    #[test]
    fn verdicts_survive_time_relabelling(h in arb_history(), scale in 2u64..7, shift in 0u64..1000) {
        // Only the order of timestamps matters: an affine relabelling
        // leaves every verdict unchanged.
        let relabelled: RawHistory = h
            .to_raw()
            .into_iter()
            .map(|mut op| {
                op.start = Time(op.start.as_u64() * scale + shift);
                op.finish = Time(op.finish.as_u64() * scale + shift);
                op
            })
            .collect();
        let h2 = relabelled.into_history().expect("relabelling preserves validity");
        prop_assert_eq!(
            Fzf.verify(&h).is_k_atomic(),
            Fzf.verify(&h2).is_k_atomic()
        );
        prop_assert_eq!(
            GkOneAv.verify(&h).is_k_atomic(),
            GkOneAv.verify(&h2).is_k_atomic()
        );
    }
}
