//! Smoke test: every committed example must build and run to completion.
//!
//! `cargo test` already *builds* the examples; this harness additionally
//! *runs* each one (via `cargo run --example`, so the target directory and
//! profile are resolved by cargo itself) and asserts a clean exit. The
//! examples print to stdout; output content is only spot-checked to keep
//! the smoke test robust to wording tweaks.

use std::process::{Command, Output};

/// Every example under `examples/`, kept in sync with `Cargo.toml`.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "audit_pipeline",
    "clock_skew",
    "fault_storm",
    "quorum_tuning",
    "resume_audit",
    "social_network",
    "weighted_writes",
];

fn run_example(name: &str) -> Output {
    Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"))
}

#[test]
fn all_examples_run_to_completion() {
    for &name in EXAMPLES {
        let out = run_example(name);
        assert!(
            out.status.success(),
            "example `{name}` failed with {}:\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{name}` printed nothing — examples are meant to demonstrate output"
        );
    }
}

#[test]
fn example_list_matches_directory() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "EXAMPLES constant is out of sync with the examples/ directory"
    );
}
