//! The witness checker is the trust anchor of the whole workbench: every
//! YES verdict is only as good as `check_witness`. These tests attack it
//! with malformed and mutated certificates.

use k_atomicity::history::{History, OpId};
use k_atomicity::verify::{check_witness, Fzf, TotalOrder, Verifier, WitnessError};
use k_atomicity::workloads::{random_k_atomic, RandomHistoryConfig};
use proptest::prelude::*;

fn history_with_witness(seed: u64, ops: usize) -> (History, TotalOrder) {
    let h = random_k_atomic(RandomHistoryConfig { ops, k: 2, seed, ..Default::default() });
    let witness = Fzf
        .verify(&h)
        .witness()
        .expect("k=2-by-construction histories are 2-atomic")
        .clone();
    (h, witness)
}

#[test]
fn truncated_witnesses_are_rejected() {
    let (h, witness) = history_with_witness(1, 30);
    let mut short = witness.clone().into_inner();
    short.pop();
    assert_eq!(
        check_witness(&h, &TotalOrder::new(short), 2),
        Err(WitnessError::NotAPermutation)
    );
}

#[test]
fn duplicated_entries_are_rejected() {
    let (h, witness) = history_with_witness(2, 30);
    let mut dup = witness.clone().into_inner();
    dup[0] = dup[1];
    assert_eq!(
        check_witness(&h, &TotalOrder::new(dup), 2),
        Err(WitnessError::NotAPermutation)
    );
}

#[test]
fn out_of_range_ids_are_rejected() {
    let (h, witness) = history_with_witness(3, 10);
    let mut bad = witness.clone().into_inner();
    bad[0] = OpId(999);
    assert_eq!(
        check_witness(&h, &TotalOrder::new(bad), 2),
        Err(WitnessError::NotAPermutation)
    );
}

#[test]
fn reversed_witnesses_fail_for_nontrivial_histories() {
    let (h, witness) = history_with_witness(4, 40);
    let mut reversed = witness.clone().into_inner();
    reversed.reverse();
    // A 40-op history with reads must break either validity or the
    // read-after-write rule when reversed.
    assert!(check_witness(&h, &TotalOrder::new(reversed), 2).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary permutations never panic the checker, and the checker is
    /// deterministic.
    #[test]
    fn shuffled_witnesses_never_panic(seed in 0u64..500, swaps in prop::collection::vec((0usize..30, 0usize..30), 0..12)) {
        let (h, witness) = history_with_witness(seed, 30);
        let mut order = witness.into_inner();
        let len = order.len();
        for (a, b) in swaps {
            order.swap(a % len, b % len);
        }
        let order = TotalOrder::new(order);
        let first = check_witness(&h, &order, 2);
        let second = check_witness(&h, &order, 2);
        prop_assert_eq!(first, second);
    }

    /// Tightening k can only move a verdict from Ok towards rejection.
    #[test]
    fn witness_acceptance_is_monotone_in_k(seed in 0u64..200) {
        let (h, witness) = history_with_witness(seed, 25);
        for k in (1..=4u64).rev() {
            if check_witness(&h, &witness, k).is_err() {
                // Rejection at k implies rejection at every smaller bound.
                for smaller in 1..k {
                    prop_assert!(
                        check_witness(&h, &witness, smaller).is_err(),
                        "rejected at k={} but accepted at k={}", k, smaller
                    );
                }
                break;
            }
        }
        // The generating bound always certifies.
        prop_assert!(check_witness(&h, &witness, 2).is_ok());
    }
}
