//! The streaming path must agree with offline verification: replaying any
//! valid generated history through the sliding-window online adapters,
//! window by window, yields the same final verdict as running `Fzf` /
//! `GkOneAv` on the complete history. This suite is part of the
//! acceptance gate for the streaming subsystem.

use k_atomicity::history::stream::completion_order;
use k_atomicity::history::History;
use k_atomicity::verify::{
    Fzf, GkOneAv, OnlineVerifier, PipelineConfig, StreamPipeline, StreamReport, Verifier,
    DEFAULT_HORIZON_WINDOWS,
};
use k_atomicity::workloads::{
    inject_ladder, random_k_atomic, streaming_workload, RandomHistoryConfig,
    StreamingWorkloadConfig,
};
use proptest::prelude::*;

/// Replays `history` in completion order through an online adapter.
fn replay<V: Verifier>(verifier: V, history: &History, window: usize) -> StreamReport {
    let mut online = OnlineVerifier::new(verifier, window);
    for id in history.sorted_by_finish() {
        online.push(*history.op(*id)).expect("valid history replays cleanly");
    }
    online.freeze().expect("valid history freezes cleanly")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Window-by-window replay of k-atomic-by-construction histories:
    /// verdicts decided by the streaming path equal offline verdicts, and
    /// with a window covering the workload's dictation spans the
    /// decomposition is exact (so the verdict *is* decided).
    #[test]
    fn fzf_streaming_agrees_with_offline(
        seed in 0u64..5000,
        ops in 10usize..150,
        window in 32usize..96,
    ) {
        let h = random_k_atomic(RandomHistoryConfig {
            ops,
            k: 1 + seed % 3,
            seed,
            ..Default::default()
        });
        let offline = Fzf.verify(&h).is_k_atomic();
        let report = replay(Fzf, &h, window);
        prop_assert!(report.exact(), "window {window} too small: {report}");
        prop_assert_eq!(report.k_atomic(), Some(offline), "{}", report);
        prop_assert!(report.peak_resident <= h.len());
    }

    /// The same agreement for the GK 1-AV baseline.
    #[test]
    fn gk_streaming_agrees_with_offline(seed in 0u64..5000, ops in 10usize..120) {
        let h = random_k_atomic(RandomHistoryConfig {
            ops,
            k: 1 + seed % 2, // k=2 histories exercise genuine NO verdicts
            seed,
            ..Default::default()
        });
        let offline = GkOneAv.verify(&h).is_k_atomic();
        let report = replay(GkOneAv, &h, 48);
        prop_assert!(report.exact(), "{}", report);
        prop_assert_eq!(report.k_atomic(), Some(offline), "{}", report);
    }

    /// Planted violations are found by the windowed replay exactly when
    /// offline finds them (the ladder gadget spans few arrivals, so a
    /// modest window keeps the decomposition exact).
    #[test]
    fn injected_violations_stream_identically(seed in 0u64..2000, depth in 2u64..5) {
        let base = random_k_atomic(RandomHistoryConfig {
            ops: 60,
            k: 2,
            seed,
            ..Default::default()
        });
        let h = inject_ladder(base.to_raw(), depth)
            .into_history()
            .expect("injected ladder stays valid");
        let offline = Fzf.verify(&h).is_k_atomic();
        let report = replay(Fzf, &h, 64);
        prop_assert!(report.exact(), "{}", report);
        prop_assert_eq!(report.k_atomic(), Some(offline), "{}", report);
    }

    /// Starving the adapter of retirement horizon must never manufacture
    /// a violation: on k-atomic-by-construction input, any horizon —
    /// including zero — yields YES or UNKNOWN, never NO, and the retained
    /// retiree metadata stays within the horizon. (Exactness under the
    /// *default* horizon is covered by the agreement tests above.)
    #[test]
    fn tiny_horizons_degrade_to_unknown_never_to_no(
        seed in 0u64..3000,
        horizon in 0usize..12,
    ) {
        let h = random_k_atomic(RandomHistoryConfig {
            ops: 120,
            k: 2,
            seed,
            ..Default::default()
        });
        let mut online = OnlineVerifier::with_horizon(Fzf, 16, horizon);
        prop_assert_eq!(online.horizon(), horizon);
        for id in h.sorted_by_finish() {
            online.push(*h.op(*id)).expect("valid history replays cleanly");
        }
        let report = online.freeze().expect("valid history freezes cleanly");
        prop_assert!(report.k_atomic() != Some(false), "{}", report);
        prop_assert!(report.peak_retired <= horizon, "{}", report);
    }

    /// The default horizon is DEFAULT_HORIZON_WINDOWS windows: streams
    /// whose sealed writes fit inside it verify exactly.
    #[test]
    fn default_horizon_keeps_short_streams_exact(seed in 0u64..2000) {
        let h = random_k_atomic(RandomHistoryConfig {
            ops: 100,
            k: 2,
            seed,
            ..Default::default()
        });
        let window = 32;
        let online = OnlineVerifier::new(Fzf, window);
        prop_assert_eq!(online.horizon(), window * DEFAULT_HORIZON_WINDOWS);
        let report = replay(Fzf, &h, window);
        prop_assert!(report.exact(), "{}", report);
        prop_assert!(report.peak_retired <= window * DEFAULT_HORIZON_WINDOWS);
    }

    /// A full history in one window degenerates to plain offline
    /// verification — agreement must be unconditional.
    #[test]
    fn whole_history_window_is_offline_verification(seed in 0u64..3000) {
        let h = random_k_atomic(RandomHistoryConfig {
            ops: 40,
            k: 1 + seed % 3,
            seed,
            read_fraction: 0.7,
            ..Default::default()
        });
        let report = replay(Fzf, &h, h.len());
        prop_assert!(report.exact());
        prop_assert_eq!(report.segments, 1);
        prop_assert_eq!(report.k_atomic(), Some(Fzf.verify(&h).is_k_atomic()));
    }

    /// The sharded pipeline agrees with offline verification per key, for
    /// any shard count, and is deterministic across shard counts.
    #[test]
    fn pipeline_agrees_with_offline_per_key(
        seed in 0u64..1000,
        keys in 1u64..8,
        shards in 1usize..6,
    ) {
        let stream = streaming_workload(StreamingWorkloadConfig {
            keys,
            ops_per_key: 50,
            k: 2,
            seed,
            ..Default::default()
        });
        let mut pipeline = StreamPipeline::new(
            Fzf,
            PipelineConfig { shards, window: 48, ..Default::default() },
        );
        for record in &stream {
            pipeline.push(record.key, record.op());
        }
        let output = pipeline.finish();
        prop_assert!(output.errors.is_empty(), "{:?}", output.errors);
        prop_assert_eq!(output.keys.len(), keys as usize);
        for (key, report) in &output.keys {
            let raw: k_atomicity::history::RawHistory =
                stream.iter().filter(|r| r.key == *key).map(|r| r.op()).collect();
            let h = raw.into_history().expect("generated sub-streams are valid");
            prop_assert!(report.exact(), "key {}: {}", key, report);
            prop_assert_eq!(
                report.k_atomic(),
                Some(Fzf.verify(&h).is_k_atomic()),
                "key {}: {}", key, report
            );
        }
    }
}

/// Sealed segments must follow completion order end to end: a history
/// replayed via `completion_order` reaches the same op count as offline.
#[test]
fn completion_order_covers_every_operation() {
    let h = random_k_atomic(RandomHistoryConfig { ops: 80, k: 2, seed: 5, ..Default::default() });
    let ordered = completion_order(&h.to_raw());
    assert_eq!(ordered.len(), h.len());
    let report = {
        let mut online = OnlineVerifier::new(Fzf, 16);
        for op in ordered {
            online.push(op).unwrap();
        }
        online.freeze().unwrap()
    };
    assert_eq!(report.ops, h.len() as u64);
}
