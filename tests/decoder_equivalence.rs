//! The zero-copy byte-slice decoder must be observationally equivalent
//! to the serde reference decoder: on any input line — well-formed in any
//! field order, decorated with unknown fields and whitespace, or
//! malformed anywhere — both decoders must agree on the verdict, on the
//! decoded record, and (through the readers) on the 1-based position of
//! the first error and on the resume fingerprint chain. This suite is
//! part of the acceptance gate for the columnar ingest path: the serde
//! decoder stays in the tree as the executable specification the fast
//! path is judged against.

use k_atomicity::history::frame::{FrameReader, FrameWriter, FRAME_LEN, FRAME_LEN_V2};
use k_atomicity::history::fxhash::Fingerprint;
use k_atomicity::history::ndjson::{self, NdjsonError, StreamRecord};
use k_atomicity::history::{OpKind, Time, Value, Weight};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = StreamRecord> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
        0u64..1_000,
        (any::<u32>(), 0u64..4),
    )
        .prop_map(|(key, is_write, value, start, len, (weight, client))| StreamRecord {
            key,
            kind: if is_write { OpKind::Write } else { OpKind::Read },
            value: Value(value),
            start: Time(start),
            finish: Time(start.saturating_add(len)),
            weight: Weight(weight),
            client,
        })
}

/// Renders `record` as one JSON line in a chosen field order, optionally
/// dropping the defaultable fields, inserting an unknown field, and
/// sprinkling insignificant whitespace — every variant a compliant
/// decoder must accept.
fn render_line(
    record: &StreamRecord,
    rotation: usize,
    drop_defaults: bool,
    unknown: Option<&str>,
    pad: bool,
) -> String {
    let kind = match record.kind {
        OpKind::Read => "\"read\"",
        OpKind::Write => "\"write\"",
    };
    let mut fields = vec![
        format!("\"kind\":{kind}"),
        format!("\"value\":{}", record.value.0),
        format!("\"start\":{}", record.start.as_u64()),
        format!("\"finish\":{}", record.finish.as_u64()),
    ];
    // `key` and `weight` are #[serde(default)]: omitting them must decode
    // as 0 and as the unit weight.
    if !(drop_defaults && record.key == 0) {
        fields.push(format!("\"key\":{}", record.key));
    }
    if !(drop_defaults && record.weight == Weight::UNIT) {
        fields.push(format!("\"weight\":{}", record.weight.0));
    }
    // `client` is #[serde(default)] too: omitting it must decode as 0
    // (the untagged sentinel).
    if !(drop_defaults && record.client == 0) {
        fields.push(format!("\"client\":{}", record.client));
    }
    if let Some(extra) = unknown {
        fields.push(extra.to_owned());
    }
    let n = fields.len();
    fields.rotate_left(rotation % n);
    let sep = if pad { " ,\t" } else { "," };
    let body = fields.join(sep);
    if pad {
        format!(" {{ {body} }}\t")
    } else {
        format!("{{{body}}}")
    }
}

/// Picks `Some(UNKNOWN_FIELDS[i])` for in-range `i`, `None` past the end
/// (the vendored proptest has no option strategy, so the range carries
/// one extra slot meaning "no unknown field").
fn unknown_field(pick: usize) -> Option<&'static str> {
    UNKNOWN_FIELDS.get(pick).copied()
}

/// Unknown-field payloads the decoders must validate and skip: nested
/// containers, escapes (including surrogate pairs), floats, literals.
const UNKNOWN_FIELDS: &[&str] = &[
    "\"tag\":\"reconfig \\u0041\\n\\\"quoted\\\"\"",
    "\"emoji\":\"\\ud83d\\ude00\"",
    "\"nested\":{\"a\":[1,2,{\"b\":null}],\"c\":false}",
    "\"f\":-12.5e3",
    "\"deep\":[[[[\"x\"]]]]",
    "\"big\":18446744073709551615",
];

/// Hand-written malformed lines hitting failure modes a lazy scanner
/// might miss: truncation, trailing garbage, bad enum tags, sign and
/// overflow errors (including inside skipped fields), lone surrogates,
/// missing fields, doubled commas, non-object top level, fractional
/// weights.
const BREAKAGES: &[&str] = &[
    "{\"kind\":\"write\",\"value\":1,\"start\":0",
    "{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":3}x",
    "{\"kind\":\"wrote\",\"value\":1,\"start\":0,\"finish\":3}",
    "{\"kind\":\"write\",\"value\":-1,\"start\":0,\"finish\":3}",
    "{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":18446744073709551616}",
    "{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":3,\"x\":\"\\ud800\"}",
    "{\"value\":1,\"start\":0,\"finish\":3}",
    "{\"kind\":\"write\",\"value\":1,,\"start\":0,\"finish\":3}",
    "[{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":3}]",
    "{\"kind\":\"write\" \"value\":1,\"start\":0,\"finish\":3}",
    "{\"kind\":\"write\",\"value\":1,\"start\":0,\"finish\":3,\"weight\":0.5}",
    "null",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any well-formed rendering — any field order, defaults dropped,
    /// unknown fields, whitespace — decodes to the same record on both
    /// paths.
    #[test]
    fn well_formed_lines_decode_identically(
        record in record_strategy(),
        rotation in 0usize..8,
        drop_defaults in any::<bool>(),
        unknown_pick in 0usize..=UNKNOWN_FIELDS.len(),
        pad in any::<bool>(),
    ) {
        let line =
            render_line(&record, rotation, drop_defaults, unknown_field(unknown_pick), pad);
        let reference = ndjson::parse_line(&line).expect("reference accepts");
        let fast = ndjson::parse_line_bytes(line.as_bytes()).expect("fast path accepts");
        prop_assert_eq!(&fast, &reference);
        prop_assert_eq!(&fast, &record);
    }

    /// On arbitrary printable input the decoders agree on the verdict,
    /// and whenever both accept they decode the same record. (Error
    /// *messages* are not part of the contract; the verdict and, below,
    /// the error line are.)
    #[test]
    fn arbitrary_lines_get_the_same_verdict(
        bytes in prop::collection::vec(0x20u8..0x7f, 0..60),
    ) {
        let line = String::from_utf8(bytes).expect("printable ASCII");
        let reference = ndjson::parse_line(&line);
        let fast = ndjson::parse_line_bytes(line.as_bytes());
        prop_assert_eq!(fast.is_ok(), reference.is_ok(), "line: {:?}", line);
        if let (Ok(fast), Ok(reference)) = (fast, reference) {
            prop_assert_eq!(fast, reference);
        }
    }

    /// Truncating or corrupting a valid line at any byte keeps the
    /// decoders in agreement.
    #[test]
    fn mutilated_lines_get_the_same_verdict(
        record in record_strategy(),
        unknown_pick in 0usize..=UNKNOWN_FIELDS.len(),
        cut_permille in 0usize..=1000,
        flip in (any::<bool>(), any::<usize>(), any::<u8>()),
    ) {
        let line = render_line(&record, 0, false, unknown_field(unknown_pick), false);
        let mut bytes = line.into_bytes();
        bytes.truncate(bytes.len() * cut_permille / 1000);
        let (flip_on, flip_at, flip_byte) = flip;
        if flip_on && !bytes.is_empty() {
            // Keep the mutation valid UTF-8 so both paths see a string
            // (invalid UTF-8 is an I/O-level concern, tested at the
            // reader layer).
            let at = flip_at % bytes.len();
            bytes[at] = flip_byte & 0x7f;
        }
        let line = String::from_utf8(bytes).expect("ASCII stays ASCII");
        let reference = ndjson::parse_line(&line);
        let fast = ndjson::parse_line_bytes(line.as_bytes());
        prop_assert_eq!(fast.is_ok(), reference.is_ok(), "line: {:?}", line);
        if let (Ok(fast), Ok(reference)) = (fast, reference) {
            prop_assert_eq!(fast, reference);
        }
    }

    /// Document level: over a stream mixing valid, blank and malformed
    /// lines, the buffered serde reader and the zero-copy slice reader
    /// yield the same record sequence, the same 1-based error lines, the
    /// same line counts and the same resume fingerprints — which is what
    /// lets a checkpoint written from one ingest path resume under the
    /// other.
    #[test]
    fn readers_agree_on_records_errors_and_fingerprints(
        records in prop::collection::vec(record_strategy(), 0..12),
        breakage_picks in prop::collection::vec(0usize..BREAKAGES.len(), 0..4),
        blanks in 0usize..3,
        trailing_newline in any::<bool>(),
        shuffle_seed in any::<u64>(),
    ) {
        let mut lines: Vec<String> = records
            .iter()
            .enumerate()
            .map(|(i, r)| render_line(r, i, i % 2 == 0, None, i % 3 == 0))
            .collect();
        lines.extend(breakage_picks.iter().map(|&i| BREAKAGES[i].to_owned()));
        lines.extend((0..blanks).map(|_| String::new()));
        // Deterministic Fisher-Yates so malformed lines land anywhere.
        let mut state = shuffle_seed | 1;
        for i in (1..lines.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            lines.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut doc = lines.join("\n");
        if trailing_newline && !doc.is_empty() {
            doc.push('\n');
        }

        let mut reference =
            ndjson::Reader::with_fingerprint(doc.as_bytes(), Fingerprint::new());
        let mut fast =
            ndjson::SliceReader::with_fingerprint(doc.as_bytes(), Fingerprint::new());
        loop {
            let (a, b) = (reference.next(), fast.next());
            prop_assert_eq!(
                reference.lines_read(),
                fast.lines_read(),
                "line counts diverge"
            );
            prop_assert_eq!(
                reference.fingerprint(),
                fast.fingerprint(),
                "fingerprints diverge at line {}",
                reference.lines_read()
            );
            match (a, b) {
                (None, None) => break,
                (Some(Ok(a)), Some(Ok(b))) => prop_assert_eq!(a, b),
                (
                    Some(Err(NdjsonError::Parse { line: a, .. })),
                    Some(Err(NdjsonError::Parse { line: b, .. })),
                ) => prop_assert_eq!(a, b, "error lines diverge: {} vs {}", a, b),
                (a, b) => prop_assert!(false, "readers diverge: {:?} vs {:?}", a, b),
            }
        }
    }

    /// The buffered line writer is byte-identical to serde serialisation,
    /// and both decoders roundtrip its output.
    #[test]
    fn buffered_writer_matches_serde(record in record_strategy()) {
        let mut line = String::new();
        ndjson::write_line_into(&record, &mut line);
        prop_assert_eq!(&line, &serde_json::to_string(&record).unwrap());
        prop_assert_eq!(&line, &ndjson::to_line(&record));
        prop_assert_eq!(ndjson::parse_line(&line).unwrap(), record.clone());
        prop_assert_eq!(ndjson::parse_line_bytes(line.as_bytes()).unwrap(), record);
    }

    /// The binary frame format roundtrips the same records the NDJSON
    /// paths carry, frame counts play the role line counts play for
    /// NDJSON, and truncation is detected at the right frame.
    #[test]
    fn frames_roundtrip_and_truncate_cleanly(
        records in prop::collection::vec(record_strategy(), 0..12),
        cut in 0usize..=FRAME_LEN,
    ) {
        // Session-tagged records need the v2 layout (the v1 writer
        // rejects tags by contract), mirroring the CLI's auto-selection.
        let v2 = records.iter().any(|r| r.client != 0);
        let frame_len = if v2 { FRAME_LEN_V2 } else { FRAME_LEN };
        let mut writer =
            if v2 { FrameWriter::new_v2(Vec::new()) } else { FrameWriter::new(Vec::new()) };
        for record in &records {
            writer.write_record(record).unwrap();
        }
        let mut bytes = writer.finish().unwrap();

        let decoded: Vec<StreamRecord> = FrameReader::new(&bytes)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(&decoded, &records);

        // Chop mid-frame (cut == FRAME_LEN appends nothing): every full
        // frame still decodes, then the partial frame errors with its
        // 1-based frame number.
        let extra: Vec<u8> = vec![0xABu8; cut % frame_len];
        bytes.extend_from_slice(&extra);
        let mut reader =
            FrameReader::with_fingerprint(&bytes, Fingerprint::new()).unwrap();
        for (i, expected) in records.iter().enumerate() {
            let got = reader.next().unwrap().unwrap();
            prop_assert_eq!(&got, expected, "frame {}", i);
        }
        match reader.next() {
            None => prop_assert!(extra.is_empty(), "only a clean boundary ends quietly"),
            Some(Err(NdjsonError::Parse { line, .. })) => {
                prop_assert!(!extra.is_empty(), "clean boundaries must end quietly");
                prop_assert_eq!(line, records.len() + 1);
            }
            other => prop_assert!(false, "unexpected tail: {:?}", other),
        }
        // A consumed truncated tail counts as one frame, exactly like a
        // malformed NDJSON line counts as one line.
        let consumed_tail = u64::from(!extra.is_empty());
        prop_assert_eq!(reader.frames_read(), records.len() as u64 + consumed_tail);
    }
}

/// A frame file whose magic is missing or wrong must be rejected at
/// construction — NDJSON piped into `--format binary` fails fast instead
/// of decoding garbage frames.
#[test]
fn bad_magic_is_rejected_at_open() {
    assert!(FrameReader::new(b"{\"kind\":\"write\",\"value\":1}").is_err());
    assert!(FrameReader::new(b"KAVF9999").is_err());
    assert!(FrameReader::new(b"KAVF000").is_err(), "short magic");
}
