//! The gate for the constrained-search escalation tier: on every history
//! small enough for the exhaustive oracle to decide (≤ 128 ops), the
//! production [`ConstrainedSearch`] engine must agree with the oracle for
//! k ∈ 1..=5, its YES verdicts must carry independently checked
//! witnesses, and its node budget must degrade to `Inconclusive` only —
//! never flip a verdict. Past the oracle's ceiling, a regression case
//! pins the removed 128-op cliff.

use k_atomicity::history::{History, HistoryBuilder, Operation, RawHistory, Time, Value};
use k_atomicity::verify::{
    check_witness, ConstrainedSearch, ExhaustiveSearch, Verdict, Verifier, MAX_SEARCH_OPS,
};
use k_atomicity::workloads::{deep_stale, DeepStaleConfig};
use proptest::prelude::*;

/// Generates an arbitrary anomaly-free history, as in
/// `cross_verifier_agreement.rs`: up to 7 writes with random intervals and
/// up to 8 reads, each referencing some write and starting no earlier than
/// that write starts. Endpoint collisions are repaired toward concurrency.
fn arb_history() -> impl Strategy<Value = History> {
    let writes = prop::collection::vec((0u64..500, 1u64..80), 1..7);
    let reads = prop::collection::vec((any::<prop::sample::Index>(), 0u64..150, 1u64..60), 0..8);
    (writes, reads).prop_map(|(writes, reads)| {
        let mut raw = RawHistory::new();
        for (i, &(start, len)) in writes.iter().enumerate() {
            raw.push(Operation::write(
                Value(i as u64 + 1),
                Time(start),
                Time(start + len),
            ));
        }
        for (which, offset, len) in reads {
            let w = which.index(writes.len());
            let (wstart, _) = writes[w];
            let start = wstart + offset;
            raw.push(Operation::read(
                Value(w as u64 + 1),
                Time(start),
                Time(start + len),
            ));
        }
        raw.make_endpoints_distinct();
        raw.into_history().expect("constructed histories are anomaly-free")
    })
}

fn checked(history: &History, verdict: &Verdict, k: u64, who: &str) -> bool {
    match verdict {
        Verdict::KAtomic { witness } => {
            check_witness(history, witness, k)
                .unwrap_or_else(|e| panic!("{who} produced a bad witness: {e}"));
            true
        }
        Verdict::NotKAtomic => false,
        Verdict::Inconclusive => panic!("{who} must be decisive here"),
        Verdict::Consistent => panic!("{who} must carry a witness, not a bare Consistent"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random histories: the constrained engine and the oracle are two
    /// structurally different exact searches; they must never disagree.
    #[test]
    fn constrained_matches_oracle_on_random_histories(h in arb_history()) {
        for k in 1..=5u64 {
            let got = checked(&h, &ConstrainedSearch::new(k).verify(&h), k, "constrained");
            let oracle = checked(&h, &ExhaustiveSearch::new(k).verify(&h), k, "oracle");
            prop_assert_eq!(got, oracle, "constrained disagrees at k = {}", k);
        }
    }

    /// Deep-stale workloads (true staleness forced to k) around the cliff
    /// — the shapes genk actually escalates in production.
    #[test]
    fn constrained_matches_oracle_on_deep_stale_histories(
        seed in 0u64..500,
        k in 1u64..=5,
    ) {
        let h = deep_stale(DeepStaleConfig {
            ops_per_key: 20,
            k,
            gadget_every: 8,
            seed,
            ..Default::default()
        });
        prop_assert!(h.len() <= MAX_SEARCH_OPS, "oracle must stay exact");
        for probe in [k.saturating_sub(1).max(1), k, k + 1] {
            let got =
                checked(&h, &ConstrainedSearch::new(probe).verify(&h), probe, "constrained");
            let oracle =
                checked(&h, &ExhaustiveSearch::new(probe).verify(&h), probe, "oracle");
            prop_assert_eq!(got, oracle, "k = {}, probe = {}", k, probe);
        }
    }

    /// A node budget only ever degrades the answer to `Inconclusive`; a
    /// budgeted run that *does* decide must match the unbounded one.
    #[test]
    fn budget_never_flips_a_verdict(h in arb_history(), budget in 0u64..200, k in 1u64..=4) {
        let exact = ConstrainedSearch::new(k).verify(&h).is_k_atomic();
        match ConstrainedSearch::with_node_budget(k, budget).verify(&h) {
            Verdict::KAtomic { witness } => {
                check_witness(&h, &witness, k)
                    .unwrap_or_else(|e| panic!("budgeted run produced a bad witness: {e}"));
                prop_assert!(exact, "budgeted YES contradicts the unbounded search");
            }
            Verdict::NotKAtomic => prop_assert!(!exact, "budgeted NO contradicts"),
            Verdict::Inconclusive => {} // the only permitted degradation
            Verdict::Consistent => {
                panic!("budgeted run must carry a witness, not a bare Consistent")
            }
        }
    }
}

/// Regression for the removed op-count cliff: a >128-op history must be
/// decided (both YES and NO sides) by the constrained engine under a
/// generous finite budget, where the oracle can only shrug.
#[test]
fn decides_above_the_oracle_ceiling() {
    // The straddling gadget (true k = 4) plus 97 serial write/read pairs:
    // 201 ops in one segment.
    let mut b = HistoryBuilder::new()
        .write(1, 0, 100)
        .write(2, 2, 102)
        .write(3, 4, 104)
        .write(4, 110, 120)
        .read(1, 122, 130)
        .read(3, 132, 140)
        .read(2, 142, 150);
    let mut t = 1000u64;
    for v in 10..107u64 {
        b = b.write(v, t, t + 5).read(v, t + 10, t + 15);
        t += 20;
    }
    let h = b.build().unwrap();
    assert!(h.len() > MAX_SEARCH_OPS);
    assert_eq!(
        ExhaustiveSearch::new(4).verify(&h),
        Verdict::Inconclusive,
        "the oracle's ceiling is the point of this test"
    );

    let generous = 10_000_000;
    let no = ConstrainedSearch::with_node_budget(3, generous).verify(&h);
    assert_eq!(no, Verdict::NotKAtomic);
    let yes = ConstrainedSearch::with_node_budget(4, generous).verify(&h);
    let Verdict::KAtomic { witness } = yes else {
        panic!("201-op segment must certify at k = 4, got {yes:?}");
    };
    check_witness(&h, &witness, 4).expect("witness must check");
}
