//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-group API surface this workspace's benches use
//! (`benchmark_group`, `sample_size`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with straightforward median
//! wall-clock timing instead of criterion's statistical machinery. Passing
//! `--test` (as `cargo test --benches` does for custom harnesses) runs each
//! benchmark body once, as a smoke test.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, test_mode: self.test_mode, _parent: self }
    }
}

/// A named benchmark identifier, `function/parameter` style.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { times: Vec::with_capacity(samples) };
        for _ in 0..samples {
            f(&mut bencher, input);
        }
        report(&self.name, &id.label, &mut bencher.times, self.test_mode);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), move |b, ()| f(b))
    }

    /// Ends the group (printing is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, times: &mut [Duration], test_mode: bool) {
    if test_mode {
        println!("test {group}/{label} ... ok");
        return;
    }
    times.sort_unstable();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    println!(
        "{group}/{label}: median {:.3} ms over {} samples",
        median.as_secs_f64() * 1e3,
        times.len()
    );
}

/// Times one benchmark body.
pub struct Bencher {
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once and records the timed sample. Unlike criterion
    /// there is no adaptive iteration count: total runtime stays
    /// proportional to `sample_size`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.times.push(start.elapsed());
    }
}

/// Declares a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
