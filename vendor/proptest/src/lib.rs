//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, integer-range and tuple strategies,
//! `prop_map`, `prop::collection::vec`, `prop::sample::Index` and
//! `any::<T>()`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its seed; rerunning is
//!   deterministic, and the seed can be committed to the regression file.
//! * **Deterministic by default.** Case `i` of test `t` always uses the
//!   same derived seed, so CI runs are reproducible. Set `PROPTEST_CASES`
//!   to override the case count.
//! * **Seed persistence is compatible in spirit**: before the generated
//!   cases, every `cc <hex-seed>` line of
//!   `proptest-regressions/<source-file-stem>.txt` (relative to the crate
//!   root cargo runs tests from) is replayed first.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, error type and the case-execution loop.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Execution parameters for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test (regression seeds run extra).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (from `prop_assert!` and friends).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// An assertion failure with a preformatted message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        fn from_seed(seed: u64) -> Self {
            TestRng { rng: StdRng::seed_from_u64(seed) }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Parses the regression-file format: lines of the form
    /// `cc <16+ hex digits> [# comment]`; the first 16 digits are the case
    /// seed. Other lines (comments, blanks) are ignored.
    pub(crate) fn parse_seed_lines(text: &str) -> Vec<u64> {
        text.lines()
            .filter_map(|line| {
                let hex = line.trim().strip_prefix("cc ")?.trim();
                u64::from_str_radix(hex.get(..16)?, 16).ok()
            })
            .collect()
    }

    /// Seeds persisted in `proptest-regressions/<stem>.txt`, resolved
    /// relative to the directory cargo runs the test binary from (the
    /// owning package root).
    fn persisted_seeds(source_file: &str) -> Vec<u64> {
        let stem = std::path::Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        let path = format!("proptest-regressions/{stem}.txt");
        match std::fs::read_to_string(path) {
            Ok(text) => parse_seed_lines(&text),
            Err(_) => Vec::new(),
        }
    }

    /// Runs `case` over the persisted regression seeds, then `config.cases`
    /// deterministically derived fresh seeds, panicking (with the seed) on
    /// the first failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, source_file: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let base = fnv1a(name.as_bytes()) ^ fnv1a(source_file.as_bytes()).rotate_left(32);

        let mut seeds = persisted_seeds(source_file);
        let persisted = seeds.len();
        seeds.extend((0..u64::from(cases)).map(|i| {
            base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }));

        for (i, seed) in seeds.into_iter().enumerate() {
            let mut rng = TestRng::from_seed(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng)
            }));
            let origin = if i < persisted { "persisted regression" } else { "generated" };
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "proptest case failed ({origin} seed): {e}\n\
                     rerun by adding the line `cc {seed:016x}` to \
                     proptest-regressions/<file>.txt"
                ),
                Err(panic_payload) => {
                    eprintln!(
                        "proptest case panicked ({origin} seed cc {seed:016x})"
                    );
                    std::panic::resume_unwind(panic_payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical ("any value") strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct ArbitraryStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use crate::strategy::Arbitrary;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An index into a collection of unknown (at generation time) size.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolves against a concrete collection length.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.rng.gen())
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(
                &config,
                ::core::stringify!($name),
                ::core::file!(),
                |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let mut __case = ||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                },
            );
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seed_lines_parse() {
        let text = "# comment\n\
                    cc 00000000000000ff # shrinks to whatever\n\
                    cc deadbeefdeadbeef\n\
                    not a seed line\n\
                    cc tooshort\n";
        assert_eq!(
            crate::test_runner::parse_seed_lines(text),
            vec![0xff, 0xdead_beef_dead_beef]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline end-to-end: tuples, ranges, vec, prop_map,
        /// any::<Index>.
        #[test]
        fn generated_values_respect_strategies(
            x in 1u64..100,
            (lo, len) in (0u32..50, 1u32..10),
            v in prop::collection::vec(0usize..5, 2..6),
            idx in any::<prop::sample::Index>(),
            doubled in (1u64..10).prop_map(|n| n * 2),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(lo < 50 && (1..10).contains(&len));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(idx.index(7) < 7);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
