//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` over the
//! vendored `serde` value tree, with serde_json-compatible output: objects
//! keep field declaration order, pretty output uses two-space indentation,
//! floats always carry a decimal point or exponent.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// 1-based line/column of a syntax error, when known.
    position: Option<(usize, usize)>,
}

impl Error {
    fn syntax(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error { message: message.into(), position: Some((line, column)) }
    }

    fn data(message: impl Into<String>) -> Self {
        Error { message: message.into(), position: None }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some((line, column)) => {
                write!(f, "{} at line {line} column {column}", self.message)
            }
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::data(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Fails only on non-finite floats, mirroring serde_json's refusal to emit
/// `NaN`/`Infinity`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Fails only on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Reports syntax errors with line/column and schema mismatches with the
/// offending field or variant.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::data("cannot serialize non-finite float"));
            }
            // `{:?}` keeps a trailing `.0` on integral floats, like ryu.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            break_line(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            break_line(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn break_line(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth, matching serde_json's default recursion limit.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0, depth: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(value)
    }

    fn error(&self, message: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error::syntax(message, line, column)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        // Containers recurse through here; bound the depth so adversarial
        // input ("[[[[...") errors instead of overflowing the stack.
        if self.depth >= MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("expected value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.error("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice is valid UTF-8"),
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, leaving `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Parses a number with the strict JSON grammar (no leading zeros, a
    /// digit required after `.` and the exponent marker), so inputs that
    /// real serde_json rejects are rejected here too.
    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err(self.error("expected digit")),
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("expected digit after decimal point"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("number out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_limit_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
        // Exactly at the limit is still fine.
        let ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn strict_number_grammar() {
        for bad in ["007", "-01", "1.", ".5", "1e", "1e+", "1.e3", "+1", "--2"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(from_str::<u64>("0").unwrap(), 0);
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert_eq!(from_str::<f64>("10.5e-1").unwrap(), 1.05);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "a\"b\\c\nd\te\u{8}\u{c}\r\u{1} 🦀";
        let encoded = to_string(&String::from(original)).unwrap();
        assert_eq!(from_str::<String>(&encoded).unwrap(), original);
        // Surrogate-pair escape decodes to the astral character.
        assert_eq!(from_str::<String>(r#""🦀""#).unwrap(), "🦀");
        assert!(from_str::<String>(r#""\ud83e""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn float_output_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert!(to_string(&f64::NAN).is_err());
    }
}
