//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements the subset this workspace uses: `StdRng` (a deterministic
//! xoshiro256++ seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}`. Determinism per seed is the only
//! statistical promise; sampling uses simple modulo reduction.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform on
    /// `[0, 1)` for floats, uniform over all values for integers/bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from raw random bits ("standard" distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The standard generator: xoshiro256++ (Blackman & Vigna), seeded through
/// SplitMix64 like the reference implementation recommends.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, fast, decent-quality PRNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((3..9u64).contains(&rng.gen_range(3..9u64)));
            assert!((3..=9u64).contains(&rng.gen_range(3..=9u64)));
            assert!((-5..=5i64).contains(&rng.gen_range(-5..=5i64)));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
    }
}
