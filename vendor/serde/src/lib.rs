//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of serde: the `Serialize` /
//! `Deserialize` traits (re-implemented over an explicit [`Value`] tree
//! instead of serde's visitor machinery) plus derive macros supporting the
//! container attributes this workspace uses — `#[serde(transparent)]`,
//! `#[serde(rename_all = "snake_case")]` and `#[serde(default)]`.
//!
//! Swapping the real serde back in is a one-line change per `Cargo.toml`;
//! no source file depends on anything beyond real serde's surface.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model everything serializes through.
///
/// Object keys keep insertion order so serialized output is deterministic
/// and follows field declaration order, like `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (fits `u64`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization failure (wrong shape, missing field, out-of-range
/// number, unknown enum variant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error carrying a preformatted message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" mismatch.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can turn themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field of this type is absent from the input.
    ///
    /// The default is an error; `Option<T>` overrides it to yield `None`,
    /// which is how the derive macro reproduces serde's implicit-`Option`
    /// behaviour without inspecting field types.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| DeError::custom(format!("invalid value {i} for unsigned integer")))?,
                    _ => return Err(DeError::expected("an unsigned integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom(format!("integer {u} out of range for {}", stringify!($t))))?,
                    Value::Int(i) => i,
                    _ => return Err(DeError::expected("an integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Int(i) => Ok(i as $t),
                    _ => Err(DeError::expected("a number", v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("a boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("a string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("an array", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
