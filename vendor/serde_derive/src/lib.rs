//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`), supporting exactly the container shapes this
//! workspace uses:
//!
//! * tuple ("newtype") structs — serialized transparently as their inner
//!   value, matching both `#[serde(transparent)]` and serde's default
//!   newtype behaviour;
//! * structs with named fields, honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` per field (and `Option<T>`
//!   fields are implicitly optional, as in real serde);
//! * enums with unit, one-element tuple, and named-field variants, in
//!   serde's externally-tagged representation, honouring
//!   `#[serde(rename_all = "snake_case")]` and per-variant
//!   `#[serde(rename = "...")]`.
//!
//! Generics, lifetimes and other serde attributes are rejected with a
//! compile-time panic naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse(input);
    gen_serialize(&container).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse(input);
    gen_deserialize(&container).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    rename_all_snake: bool,
    data: Data,
}

enum Data {
    /// Tuple struct with the given arity (only 1 is supported).
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    has_default: bool,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`.
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    /// Wire tag from `#[serde(rename = "...")]`, overriding `rename_all`.
    rename: Option<String>,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Default)]
struct SerdeAttrs {
    rename_all_snake: bool,
    has_default: bool,
    skip_if: Option<String>,
    rename: Option<String>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in: generic type `{name}` is not supported");
    }

    let data = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream()))
            }
            other => panic!("serde stand-in: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in: cannot derive for `{other}` items"),
    };

    Container { name, rename_all_snake: attrs.rename_all_snake, data }
}

/// Parses leading attributes at `pos`, returning the serde-relevant facts
/// and advancing past every attribute (doc comments, `#[derive(..)]`,
/// `#[default]`, ... are skipped).
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            panic!("serde stand-in: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            let Some(TokenTree::Group(args)) = inner.get(1) else {
                panic!("serde stand-in: expected `#[serde(...)]`");
            };
            apply_serde_args(args.stream(), &mut attrs);
        }
        *pos += 2;
    }
    attrs
}

fn apply_serde_args(args: TokenStream, attrs: &mut SerdeAttrs) {
    let items: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        match &items[i] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "transparent" => {
                    // Newtype structs are always serialized transparently.
                    i += 1;
                }
                "default" => {
                    attrs.has_default = true;
                    i += 1;
                }
                "rename_all" => {
                    let value = match items.get(i + 2) {
                        Some(TokenTree::Literal(lit)) => lit.to_string(),
                        other => panic!("serde stand-in: malformed rename_all: {other:?}"),
                    };
                    if value != "\"snake_case\"" {
                        panic!("serde stand-in: only rename_all = \"snake_case\" is supported, got {value}");
                    }
                    attrs.rename_all_snake = true;
                    i += 3;
                }
                "rename" => {
                    attrs.rename = Some(string_arg("rename", items.get(i + 2)));
                    i += 3;
                }
                "skip_serializing_if" => {
                    attrs.skip_if =
                        Some(string_arg("skip_serializing_if", items.get(i + 2)));
                    i += 3;
                }
                other => panic!("serde stand-in: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde stand-in: unexpected token in #[serde(...)]: {other}"),
        }
    }
}

/// Extracts the string content of a `name = "value"` serde argument.
fn string_arg(name: &str, token: Option<&TokenTree>) -> String {
    match token {
        Some(TokenTree::Literal(lit)) => {
            let text = lit.to_string();
            match text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
                Some(inner) => inner.to_string(),
                None => panic!("serde stand-in: malformed {name}: {text}"),
            }
        }
        other => panic!("serde stand-in: malformed {name}: {other:?}"),
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde stand-in: expected identifier, found {other:?}"),
    }
}

/// Counts the comma-separated fields of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde stand-in: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(pos) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field { name, has_default: attrs.has_default, skip_if: attrs.skip_if });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let data = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantData::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantData::Named(parse_named_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, rename: attrs.rename, data });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn rename(name: &str, snake: bool) -> String {
    if !snake {
        return name.to_string();
    }
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            panic!("serde stand-in: tuple struct `{name}` with {n} fields is not supported")
        }
        Data::Named(fields) => {
            let mut out = String::from(
                "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let key = rename(&f.name, c.rename_all_snake);
                let push = format!(
                    "__entries.push((::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name
                );
                match &f.skip_if {
                    Some(path) => out.push_str(&format!(
                        "if !{path}(&self.{}) {{\n{push}}}\n",
                        f.name
                    )),
                    None => out.push_str(&push),
                }
            }
            out.push_str("::serde::Value::Object(__entries)");
            out
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag =
                    v.rename.clone().unwrap_or_else(|| rename(&v.name, c.rename_all_snake));
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),\n",
                        v = v.name
                    )),
                    VariantData::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Serialize::to_value(__f0))]),\n",
                        v = v.name
                    )),
                    VariantData::Tuple(n) => panic!(
                        "serde stand-in: variant `{name}::{}` with {n} tuple fields is not supported",
                        v.name
                    ),
                    VariantData::Named(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let key = rename(&f.name, false);
                            pushes.push_str(&format!(
                                "__payload.push((::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value({})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut __payload: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), ::serde::Value::Object(__payload))])\n\
                             }},\n",
                            v = v.name,
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Generates the `field: ...` initializer for one named field read from the
/// object `__v`.
fn named_field_init(f: &Field, rename_all_snake: bool) -> String {
    let key = rename(&f.name, rename_all_snake);
    let missing = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("::serde::Deserialize::missing_field(\"{key}\")?")
    };
    format!(
        "{field}: match __v.get(\"{key}\") {{\n\
         ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n",
        field = f.name
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Data::Tuple(n) => {
            panic!("serde stand-in: tuple struct `{name}` with {n} fields is not supported")
        }
        Data::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&named_field_init(f, c.rename_all_snake));
            }
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"struct {name}\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let tag =
                    v.rename.clone().unwrap_or_else(|| rename(&v.name, c.rename_all_snake));
                match &v.data {
                    VariantData::Unit => unit_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantData::Tuple(1) => data_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),\n",
                        v = v.name
                    )),
                    VariantData::Tuple(n) => panic!(
                        "serde stand-in: variant `{name}::{}` with {n} tuple fields is not supported",
                        v.name
                    ),
                    VariantData::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            // Reuse the named-struct reader with `__payload`
                            // in scope as `__v`.
                            inits.push_str(&named_field_init(f, false));
                        }
                        data_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __v = __payload;\n\
                             if __v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"variant {name}::{v}\", __v));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                             }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", __v)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
