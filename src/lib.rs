//! # k-atomicity
//!
//! A verification workbench for **k-atomicity** of read/write register
//! histories — a full reproduction of *On the k-Atomicity-Verification
//! Problem* (Golab, Hurwitz & Li, ICDCS 2013).
//!
//! A history is *k-atomic* iff some valid total order of its operations
//! (one consistent with real-time precedence) lets every read return one of
//! the `k` freshest values. `k = 1` is linearizability; modern quorum
//! stores often only achieve `k ≥ 2`.
//!
//! This meta-crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`history`] | operation/history model, anomaly detection, zones & chunks, NDJSON streams |
//! | [`verify`] | the LBT & FZF 2-AV verifiers, GK 1-AV, the general-k GenK bound sandwich, exact search, smallest-k, streaming adapters |
//! | [`weighted`] | the NP-complete weighted problem & bin-packing reduction |
//! | [`sim`] | a Dynamo-style quorum-store simulator producing histories |
//! | [`workloads`] | synthetic generators (adversarial staircase, ladders, op streams, …) |
//!
//! The streaming path (sliding-window online verification of unbounded
//! multi-register op streams) is described in `docs/ARCHITECTURE.md`; see
//! [`verify::OnlineVerifier`] and [`verify::StreamPipeline`].
//!
//! # Quick start
//!
//! ```
//! use k_atomicity::history::HistoryBuilder;
//! use k_atomicity::verify::{smallest_k, Fzf, GkOneAv, Staleness, Verifier};
//!
//! // A read one write stale: 2-atomic but not linearizable.
//! let history = HistoryBuilder::new()
//!     .write(1, 0, 10)
//!     .write(2, 12, 20)
//!     .read(1, 22, 30)
//!     .build()?;
//!
//! assert!(!GkOneAv.verify(&history).is_k_atomic());
//! assert!(Fzf.verify(&history).is_k_atomic());
//! assert_eq!(smallest_k(&history, None), Staleness::Exact(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Verifying a simulated Dynamo-style store
//!
//! ```
//! use k_atomicity::sim::{SimConfig, Simulation};
//! use k_atomicity::verify::{smallest_k, Staleness};
//!
//! let output = Simulation::new(SimConfig {
//!     replicas: 3,
//!     read_quorum: 2,
//!     write_quorum: 2,
//!     ops_per_client: 25,
//!     ..SimConfig::default()
//! })?.run();
//!
//! for (key, history) in output.into_histories()? {
//!     // Strict quorums: every key should verify at k <= 2.
//!     assert!(smallest_k(&history, Some(100_000)).lower_bound() <= 2, "key {key}");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The operation/history model (re-export of `kav-history`).
pub mod history {
    pub use kav_history::*;
}

/// The verification algorithms (re-export of `kav-core`).
pub mod verify {
    pub use kav_core::*;
}

/// The weighted problem and its NP-completeness artefacts (re-export of
/// `kav-weighted`).
pub mod weighted {
    pub use kav_weighted::*;
}

/// The quorum-store simulator (re-export of `kav-sim`).
pub mod sim {
    pub use kav_sim::*;
}

/// Synthetic workload generators (re-export of `kav-workloads`).
pub mod workloads {
    pub use kav_workloads::*;
}
